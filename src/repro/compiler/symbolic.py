"""Small symbolic algebra over VASS expression trees.

The DAE compiler needs to turn implicit simultaneous statements
(``lhs == rhs``) into explicit signal-flow ("solvers", paper Section 4).
This module provides the required symbolic manipulation directly on the
VASS AST:

* constant folding and algebraic simplification;
* linear coefficient extraction — rewrite an expression as
  ``a * x + b`` with ``a`` and ``b`` free of ``x``;
* single-occurrence isolation by inverse-operation path walking (covers
  nonlinear forms such as ``log(x) + c == y``);
* :func:`solve_for` combining both strategies.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.diagnostics import CompileError
from repro.vass import ast_nodes as ast


# ---------------------------------------------------------------------------
# Constructors (location-free, used for synthesized expressions)
# ---------------------------------------------------------------------------


def num(value: float) -> ast.Expression:
    if float(value) == int(value) and abs(value) < 1e15:
        return ast.RealLiteral(value=float(value))
    return ast.RealLiteral(value=float(value))


def name(identifier: str) -> ast.Name:
    return ast.Name(identifier=identifier)


def add(left: ast.Expression, right: ast.Expression) -> ast.Expression:
    return simplify(ast.BinaryOp(operator="+", left=left, right=right))


def sub(left: ast.Expression, right: ast.Expression) -> ast.Expression:
    return simplify(ast.BinaryOp(operator="-", left=left, right=right))


def mul(left: ast.Expression, right: ast.Expression) -> ast.Expression:
    return simplify(ast.BinaryOp(operator="*", left=left, right=right))


def div(left: ast.Expression, right: ast.Expression) -> ast.Expression:
    return simplify(ast.BinaryOp(operator="/", left=left, right=right))


def neg(operand: ast.Expression) -> ast.Expression:
    return simplify(ast.UnaryOp(operator="-", operand=operand))


def call(fn: str, *args: ast.Expression) -> ast.Expression:
    return ast.FunctionCall(name=fn, arguments=list(args))


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


def literal_value(expr: ast.Expression) -> Optional[float]:
    """The numeric value of a literal expression, or None."""
    if isinstance(expr, ast.RealLiteral):
        return expr.value
    if isinstance(expr, ast.IntegerLiteral):
        return float(expr.value)
    if isinstance(expr, ast.UnaryOp) and expr.operator == "-":
        inner = literal_value(expr.operand)
        return None if inner is None else -inner
    return None


def is_zero(expr: ast.Expression) -> bool:
    return literal_value(expr) == 0.0


def is_one(expr: ast.Expression) -> bool:
    return literal_value(expr) == 1.0


def count_occurrences(expr: ast.Expression, target: str) -> int:
    """How many times ``target`` is referenced inside ``expr``."""
    return sum(
        1
        for node in ast.walk_expression(expr)
        if isinstance(node, ast.Name) and node.identifier == target
    )


def free_names(expr: ast.Expression) -> List[str]:
    return ast.referenced_names(expr)


def equal(left: ast.Expression, right: ast.Expression) -> bool:
    """Structural equality of two expressions."""
    return canonical(left) == canonical(right)


def canonical(expr: ast.Expression) -> str:
    """Canonical string for hashing/equality of expressions."""
    if isinstance(expr, ast.Name):
        return expr.identifier
    if isinstance(expr, ast.RealLiteral):
        return repr(expr.value)
    if isinstance(expr, ast.IntegerLiteral):
        return repr(float(expr.value))
    if isinstance(expr, ast.CharacterLiteral):
        return f"'{expr.value}'"
    if isinstance(expr, ast.BooleanLiteral):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.UnaryOp):
        return f"({expr.operator} {canonical(expr.operand)})"
    if isinstance(expr, ast.BinaryOp):
        left, right = canonical(expr.left), canonical(expr.right)
        if expr.operator in ("+", "*") and right < left:
            left, right = right, left  # commutative normal form
        return f"({left} {expr.operator} {right})"
    if isinstance(expr, ast.FunctionCall):
        args = ",".join(canonical(a) for a in expr.arguments)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.AttributeExpr):
        args = ",".join(canonical(a) for a in expr.arguments)
        return f"{canonical(expr.prefix)}'{expr.attribute}({args})"
    if isinstance(expr, ast.IndexedName):
        return f"{canonical(expr.prefix)}[{canonical(expr.index)}]"
    return repr(expr)


# ---------------------------------------------------------------------------
# Simplification
# ---------------------------------------------------------------------------


def simplify(expr: ast.Expression) -> ast.Expression:
    """Constant-fold and apply identity simplifications (one pass, recursive)."""
    if isinstance(expr, ast.UnaryOp):
        operand = simplify(expr.operand)
        value = literal_value(operand)
        if expr.operator == "-":
            if value is not None:
                return num(-value)
            if isinstance(operand, ast.UnaryOp) and operand.operator == "-":
                return operand.operand  # --x -> x
            if isinstance(operand, ast.BinaryOp) and operand.operator in (
                "*",
                "/",
            ):
                # Fold the sign into a literal factor: -(k*x) -> (-k)*x.
                lv2 = literal_value(operand.left)
                rv2 = literal_value(operand.right)
                if lv2 is not None:
                    return simplify(
                        ast.BinaryOp(
                            operator=operand.operator,
                            left=num(-lv2),
                            right=operand.right,
                        )
                    )
                if rv2 is not None:
                    return simplify(
                        ast.BinaryOp(
                            operator=operand.operator,
                            left=operand.left,
                            right=num(-rv2),
                        )
                    )
            return ast.UnaryOp(operator="-", operand=operand)
        if expr.operator == "+":
            return operand
        if expr.operator == "abs" and value is not None:
            return num(abs(value))
        return ast.UnaryOp(operator=expr.operator, operand=operand)

    if isinstance(expr, ast.BinaryOp):
        left = simplify(expr.left)
        right = simplify(expr.right)
        lv, rv = literal_value(left), literal_value(right)
        op = expr.operator
        if lv is not None and rv is not None:
            if op == "+":
                return num(lv + rv)
            if op == "-":
                return num(lv - rv)
            if op == "*":
                return num(lv * rv)
            if op == "/" and rv != 0:
                return num(lv / rv)
            if op == "**":
                return num(lv ** rv)
        if op == "+":
            if lv == 0.0:
                return right
            if rv == 0.0:
                return left
        elif op == "-":
            if rv == 0.0:
                return left
            if lv == 0.0:
                return simplify(ast.UnaryOp(operator="-", operand=right))
            if equal(left, right):
                return num(0.0)
        elif op == "*":
            if lv == 0.0 or rv == 0.0:
                return num(0.0)
            if lv == 1.0:
                return right
            if rv == 1.0:
                return left
            if lv == -1.0:
                return simplify(ast.UnaryOp(operator="-", operand=right))
            if rv == -1.0:
                return simplify(ast.UnaryOp(operator="-", operand=left))
        elif op == "/":
            if lv == 0.0:
                return num(0.0)
            if rv == 1.0:
                return left
            if rv == -1.0:
                return simplify(ast.UnaryOp(operator="-", operand=left))
            if equal(left, right) and rv is None and lv is None:
                return num(1.0)
        elif op == "**":
            if rv == 1.0:
                return left
            if rv == 0.0:
                return num(1.0)
        return ast.BinaryOp(operator=op, left=left, right=right)

    if isinstance(expr, ast.FunctionCall):
        args = [simplify(a) for a in expr.arguments]
        # log(exp(x)) -> x, exp(log(x)) -> x
        if expr.name in ("log", "ln") and len(args) == 1:
            inner = args[0]
            if isinstance(inner, ast.FunctionCall) and inner.name == "exp":
                return inner.arguments[0]
        if expr.name == "exp" and len(args) == 1:
            inner = args[0]
            if isinstance(inner, ast.FunctionCall) and inner.name in ("log", "ln"):
                return inner.arguments[0]
        return ast.FunctionCall(name=expr.name, arguments=args)

    if isinstance(expr, ast.AttributeExpr):
        return ast.AttributeExpr(
            prefix=simplify(expr.prefix),
            attribute=expr.attribute,
            arguments=[simplify(a) for a in expr.arguments],
        )
    return expr


def substitute(
    expr: ast.Expression, target: str, replacement: ast.Expression
) -> ast.Expression:
    """Replace every reference to ``target`` with ``replacement``."""
    if isinstance(expr, ast.Name):
        return replacement if expr.identifier == target else expr
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(
            operator=expr.operator,
            operand=substitute(expr.operand, target, replacement),
        )
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            operator=expr.operator,
            left=substitute(expr.left, target, replacement),
            right=substitute(expr.right, target, replacement),
        )
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            name=expr.name,
            arguments=[substitute(a, target, replacement) for a in expr.arguments],
        )
    if isinstance(expr, ast.AttributeExpr):
        return ast.AttributeExpr(
            prefix=substitute(expr.prefix, target, replacement),
            attribute=expr.attribute,
            arguments=[substitute(a, target, replacement) for a in expr.arguments],
        )
    if isinstance(expr, ast.IndexedName):
        return ast.IndexedName(
            prefix=substitute(expr.prefix, target, replacement),
            index=substitute(expr.index, target, replacement),
        )
    return expr


# ---------------------------------------------------------------------------
# Linear extraction
# ---------------------------------------------------------------------------


class NonlinearError(CompileError):
    """Raised when an expression is not linear in the requested name."""


def collect_linear(
    expr: ast.Expression, target: str
) -> Tuple[ast.Expression, ast.Expression]:
    """Rewrite ``expr`` as ``a * target + b``; returns ``(a, b)``.

    ``a`` and ``b`` are free of ``target``.  Raises
    :class:`NonlinearError` when the expression is not linear in
    ``target`` (e.g. ``target`` under a nonlinear function, a product of
    ``target`` with itself, or ``target`` in a denominator).
    """
    if count_occurrences(expr, target) == 0:
        return num(0.0), expr
    if isinstance(expr, ast.Name) and expr.identifier == target:
        return num(1.0), num(0.0)
    if isinstance(expr, ast.UnaryOp):
        if expr.operator == "-":
            a, b = collect_linear(expr.operand, target)
            return neg(a), neg(b)
        if expr.operator == "+":
            return collect_linear(expr.operand, target)
        raise NonlinearError(
            f"{target!r} appears under nonlinear operator {expr.operator!r}"
        )
    if isinstance(expr, ast.BinaryOp):
        op = expr.operator
        if op == "+":
            la, lb = collect_linear(expr.left, target)
            ra, rb = collect_linear(expr.right, target)
            return add(la, ra), add(lb, rb)
        if op == "-":
            la, lb = collect_linear(expr.left, target)
            ra, rb = collect_linear(expr.right, target)
            return sub(la, ra), sub(lb, rb)
        if op == "*":
            left_has = count_occurrences(expr.left, target) > 0
            right_has = count_occurrences(expr.right, target) > 0
            if left_has and right_has:
                raise NonlinearError(
                    f"product of two factors both containing {target!r}"
                )
            if left_has:
                a, b = collect_linear(expr.left, target)
                return mul(a, expr.right), mul(b, expr.right)
            a, b = collect_linear(expr.right, target)
            return mul(expr.left, a), mul(expr.left, b)
        if op == "/":
            if count_occurrences(expr.right, target) > 0:
                raise NonlinearError(f"{target!r} appears in a denominator")
            a, b = collect_linear(expr.left, target)
            return div(a, expr.right), div(b, expr.right)
        raise NonlinearError(
            f"{target!r} appears under non-affine operator {op!r}"
        )
    raise NonlinearError(
        f"{target!r} appears inside a non-affine construct "
        f"{type(expr).__name__}"
    )


# ---------------------------------------------------------------------------
# Single-occurrence isolation (inverse-path walking)
# ---------------------------------------------------------------------------


def _invert_step(
    container: ast.Expression, target: str, rhs: ast.Expression
) -> Tuple[ast.Expression, ast.Expression]:
    """One inversion step: peel the outermost operation off ``container``.

    Given ``container(x...) == rhs`` with ``target`` on exactly one side
    of the container's children, return ``(child, new_rhs)`` such that
    ``child == new_rhs`` is equivalent.
    """
    if isinstance(container, ast.UnaryOp):
        if container.operator == "-":
            return container.operand, neg(rhs)
        if container.operator == "+":
            return container.operand, rhs
        raise CompileError(
            f"cannot invert unary operator {container.operator!r}"
        )
    if isinstance(container, ast.BinaryOp):
        op = container.operator
        in_left = count_occurrences(container.left, target) > 0
        if op == "+":
            if in_left:
                return container.left, sub(rhs, container.right)
            return container.right, sub(rhs, container.left)
        if op == "-":
            if in_left:
                return container.left, add(rhs, container.right)
            return container.right, sub(container.left, rhs)
        if op == "*":
            if in_left:
                return container.left, div(rhs, container.right)
            return container.right, div(rhs, container.left)
        if op == "/":
            if in_left:
                return container.left, mul(rhs, container.right)
            return container.right, div(container.left, rhs)
        if op == "**":
            if in_left:
                exponent = literal_value(container.right)
                if exponent is None or exponent == 0:
                    raise CompileError("cannot invert ** with symbolic exponent")
                return container.left, call(
                    "exp", div(call("log", rhs), container.right)
                )
            raise CompileError("cannot isolate a name in an exponent")
        raise CompileError(f"cannot invert operator {op!r}")
    if isinstance(container, ast.FunctionCall):
        if len(container.arguments) != 1:
            raise CompileError(
                f"cannot invert call of {container.name!r} with "
                f"{len(container.arguments)} arguments"
            )
        inner = container.arguments[0]
        inverses = {
            "log": "exp",
            "ln": "exp",
            "exp": "log",
        }
        if container.name in inverses:
            return inner, call(inverses[container.name], rhs)
        if container.name == "sqrt":
            return inner, mul(rhs, rhs)
        raise CompileError(f"cannot invert function {container.name!r}")
    raise CompileError(
        f"cannot invert construct {type(container).__name__}"
    )


def isolate(
    lhs: ast.Expression, rhs: ast.Expression, target: str
) -> ast.Expression:
    """Solve ``lhs == rhs`` for a ``target`` that occurs exactly once.

    Walks inverse operations down the path to the single occurrence of
    ``target``.  Raises :class:`CompileError` when the target occurs
    zero or multiple times, or when an operation on the path has no
    inverse.
    """
    on_left = count_occurrences(lhs, target)
    on_right = count_occurrences(rhs, target)
    if on_left + on_right != 1:
        raise CompileError(
            f"{target!r} must occur exactly once for isolation "
            f"(found {on_left + on_right})"
        )
    if on_right:
        lhs, rhs = rhs, lhs
    current, value = lhs, rhs
    for _ in range(200):
        if isinstance(current, ast.Name) and current.identifier == target:
            return simplify(value)
        current, value = _invert_step(current, target, value)
    raise CompileError(f"isolation of {target!r} did not converge")


# ---------------------------------------------------------------------------
# Equation solving
# ---------------------------------------------------------------------------


def solve_for(
    lhs: ast.Expression, rhs: ast.Expression, target: str
) -> ast.Expression:
    """Solve the equation ``lhs == rhs`` for ``target``.

    Tries linear coefficient extraction first (handles repeated affine
    occurrences), then single-occurrence inverse-path isolation (handles
    solitary nonlinear occurrences).  The returned expression is
    simplified and free of ``target``.
    """
    occurrences = count_occurrences(lhs, target) + count_occurrences(rhs, target)
    if occurrences == 0:
        raise CompileError(f"equation does not involve {target!r}")
    residual = simplify(ast.BinaryOp(operator="-", left=lhs, right=rhs))
    try:
        a, b = collect_linear(residual, target)
        a = simplify(a)
        if is_zero(a):
            raise NonlinearError(f"coefficient of {target!r} vanished")
        # a * x + b = 0  =>  x = -b / a
        solution = simplify(div(neg(b), a))
        return solution
    except NonlinearError:
        pass
    if occurrences == 1:
        return isolate(lhs, rhs, target)
    raise CompileError(
        f"cannot solve equation for {target!r}: nonlinear with "
        f"{occurrences} occurrences"
    )
