"""Compilation of VASS process statements into VHIF FSMs.

Translation rules (paper Section 4, Figure 3):

* the FSM has a ``start`` state denoting the suspended process; resuming
  is the transition from ``start`` controlled by the logical OR of the
  events in the sensitivity list (no arbitration — only one event occurs
  at a time);
* successive statements are grouped into the *same* state when they have
  no data dependencies (maximal concurrency); a data dependency with any
  statement of the current state opens a new state;
* ``if``/``case`` statements become conditional arcs between states;
* ``'above`` events originate in the continuous-time part: the compiler
  instantiates a comparator block in the main signal-flow graph and
  registers it as the event source.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.diagnostics import CompileError
from repro.vass import ast_nodes as ast
from repro.vass.semantics import AnalyzedDesign, SemanticError, ValueType, eval_static
from repro.compiler.expressions import ExprCompiler
from repro.vhif.design import VhifDesign
from repro.vhif.fsm import (
    ALWAYS,
    AboveEvent,
    AllOf,
    AnyOf,
    Condition,
    DataOp,
    ExprCondition,
    Fsm,
    Not,
    PortEvent,
    SignalEquals,
    START_STATE,
    sensitivity_condition,
)
from repro.vhif.sfg import BlockKind


def _fold_constants(
    expr: ast.Expression, design: AnalyzedDesign
) -> ast.Expression:
    """Replace references to static constants with literals.

    FSM data-path expressions are evaluated against the runtime
    environment, which knows signals and quantities but not VASS
    constants; folding keeps the environment small.
    """
    if isinstance(expr, ast.Name):
        symbol = design.scope.lookup(expr.identifier)
        if symbol is not None and symbol.static_value is not None:
            return ast.RealLiteral(value=symbol.static_value)
        return expr
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(
            operator=expr.operator, operand=_fold_constants(expr.operand, design)
        )
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            operator=expr.operator,
            left=_fold_constants(expr.left, design),
            right=_fold_constants(expr.right, design),
        )
    if isinstance(expr, ast.FunctionCall):
        return ast.FunctionCall(
            name=expr.name,
            arguments=[_fold_constants(a, design) for a in expr.arguments],
        )
    if isinstance(expr, ast.AttributeExpr):
        return ast.AttributeExpr(
            prefix=_fold_constants(expr.prefix, design),
            attribute=expr.attribute,
            arguments=[_fold_constants(a, design) for a in expr.arguments],
        )
    return expr


class ProcessCompiler:
    """Builds one FSM from one process statement."""

    def __init__(
        self,
        process: ast.ProcessStmt,
        design: AnalyzedDesign,
        vhif: VhifDesign,
        compiler: ExprCompiler,
        name: str,
    ):
        self.process = process
        self.design = design
        self.vhif = vhif
        self.compiler = compiler
        self.fsm = Fsm(name=name)
        self._state_counter = 0
        #: control source for sampling hardware: a *signal* name (first
        #: port event in the sensitivity list) or a comparator block.
        self._sample_control_signal: Optional[str] = None
        self._sample_control_block = None

    # -- sensitivity ----------------------------------------------------------

    def _compile_sensitivity(self) -> Condition:
        events: List[Condition] = []
        for event in self.process.sensitivity:
            if isinstance(event, ast.AttributeExpr) and event.attribute == "above":
                above = self._compile_above_event(event)
                events.append(above)
                if self._sample_control_block is None:
                    source = self.vhif.event_sources[above.key]
                    self._sample_control_block = self.compiler.sfg.block(
                        source[1]
                    )
            elif isinstance(event, ast.Name):
                events.append(PortEvent(name=event.identifier))
                if self._sample_control_signal is None:
                    self._sample_control_signal = event.identifier
            else:
                raise CompileError(
                    "unsupported sensitivity entry", event.location
                )
        return sensitivity_condition(events)

    def _compile_above_event(self, event: ast.AttributeExpr) -> AboveEvent:
        if not isinstance(event.prefix, ast.Name):
            raise CompileError(
                "'above prefix must be a quantity name", event.location
            )
        quantity = event.prefix.identifier
        try:
            threshold = float(eval_static(event.arguments[0], self.design.scope))  # type: ignore[arg-type]
        except SemanticError as err:
            raise CompileError(
                f"'above threshold must be static: {err.bare_message}",
                event.location,
            )
        threshold_name = (
            event.arguments[0].identifier
            if isinstance(event.arguments[0], ast.Name)
            else None
        )
        above = AboveEvent(
            quantity=quantity, threshold=threshold, threshold_name=threshold_name
        )
        # The event originates in the continuous-time part: instantiate
        # (or reuse, through CSE) a comparator watching the quantity.
        comparator = self.compiler.compile(
            ast.AttributeExpr(
                prefix=ast.Name(identifier=quantity),
                attribute="above",
                arguments=[ast.RealLiteral(value=threshold)],
            )
        )
        self.vhif.event_sources[above.key] = (
            self.compiler.sfg.name,
            comparator.block_id,
        )
        return above

    # -- conditions on arcs ------------------------------------------------------

    def _arc_condition(self, condition: ast.Expression) -> Condition:
        folded = _fold_constants(condition, self.design)
        # signal = 'x' level test
        if isinstance(folded, ast.BinaryOp) and folded.operator == "=":
            left, right = folded.left, folded.right
            if isinstance(left, ast.Name) and isinstance(
                right, ast.CharacterLiteral
            ):
                return SignalEquals(name=left.identifier, value=right.value)
            if isinstance(left, ast.Name) and isinstance(right, ast.BooleanLiteral):
                return SignalEquals(name=left.identifier, value=right.value)
        # 'above level tests reference the comparator through the
        # environment; ExprCondition evaluates them against quantity taps.
        text = str(condition)
        return ExprCondition(expr=folded, text=text)

    # -- state construction --------------------------------------------------------

    def _new_state(self) -> str:
        self._state_counter += 1
        name = f"state{self._state_counter}"
        self.fsm.add_state(name)
        return name

    def _emit_chain(
        self,
        stmts: Sequence[ast.SequentialStmt],
        entries: List[Tuple[str, Condition]],
    ) -> List[Tuple[str, Condition]]:
        """Compile a statement list; returns the exit arcs.

        ``entries`` are (state, condition) pairs from which execution
        enters this chain.  The return value lists (state, condition)
        pairs from which execution leaves it.
        """
        current: Optional[str] = None  # open state collecting concurrent ops

        def ensure_state() -> str:
            nonlocal current, entries
            if current is None:
                current = self._new_state()
                for state, condition in entries:
                    self.fsm.add_transition(state, current, condition)
                entries = [(current, ALWAYS)]
            return current

        for stmt in stmts:
            if isinstance(stmt, (ast.SignalAssignment, ast.VariableAssignment)):
                expr = _fold_constants(stmt.value, self.design)
                if isinstance(stmt, ast.SignalAssignment) and self._is_analog(
                    expr
                ):
                    # Sampling rule: assigning a continuous-time value to
                    # a *signal* requires a sample-and-hold (plus an A/D
                    # converter for bit-vector targets).  The hardware
                    # lives in the signal-flow graph, gated by the
                    # process's triggering event; the FSM keeps a
                    # data-path op reading the sampled value.
                    expr = self._lower_sampled(stmt, expr)
                op = DataOp(
                    target=stmt.target,
                    expr=expr,
                    is_signal=isinstance(stmt, ast.SignalAssignment),
                )
                state_name = ensure_state()
                state = self.fsm.state(state_name)
                reads = set(op.reads())
                writes = state.writes()
                # Data dependency with the current state: open a new one.
                if reads & writes or op.target in writes:
                    previous = state_name
                    current = None
                    entries = [(previous, ALWAYS)]
                    state = self.fsm.state(ensure_state())
                state.operations.append(op)
            elif isinstance(stmt, ast.IfStmt):
                entries = self._emit_branches(stmt, entries, current)
                current = None
            elif isinstance(stmt, ast.CaseStmt):
                lowered = self._lower_case(stmt)
                entries = self._emit_branches(lowered, entries, current)
                current = None
            elif isinstance(stmt, ast.NullStmt):
                continue
            elif isinstance(stmt, (ast.WhileStmt, ast.ForStmt)):
                raise CompileError(
                    "loops inside processes are not supported by the "
                    "VASS compiler (use a procedural)",
                    stmt.location,
                )
            elif isinstance(stmt, ast.BreakStmt):
                continue  # discontinuity hints do not synthesize
            else:
                raise CompileError(
                    f"unsupported statement {type(stmt).__name__} in process",
                    stmt.location,
                )
        return entries

    def _is_analog(self, expr: ast.Expression) -> bool:
        """True when the expression reads continuous-time values."""
        for name in ast.referenced_names(expr):
            symbol = self.design.scope.lookup(name)
            if (
                symbol is not None
                and symbol.object_class is ast.ObjectClass.QUANTITY
            ):
                return True
        return False

    def _lower_sampled(
        self, stmt: ast.SignalAssignment, expr: ast.Expression
    ) -> ast.Expression:
        """Emit S/H (+ ADC) hardware for a sampled quantity expression."""
        sfg = self.compiler.sfg
        value = self.compiler.compile(expr)
        hold = sfg.add(BlockKind.SAMPLE_HOLD, name=f"sh_{stmt.target}")
        sfg.connect(value, hold, port=0)
        self._attach_sample_control(hold)
        final = hold
        target_symbol = self.design.scope.lookup(stmt.target)
        if (
            target_symbol is not None
            and target_symbol.value_type is ValueType.BIT_VECTOR
        ):
            bits = 8
            if target_symbol.bounds is not None:
                lo, hi = target_symbol.bounds
                bits = abs(hi - lo) + 1
            adc = sfg.add(BlockKind.ADC, name=f"adc_{stmt.target}", bits=bits)
            sfg.connect(hold, adc, port=0)
            self._attach_sample_control(adc)
            final = adc
        tap = f"{stmt.target}_sampled"
        self.vhif.quantity_taps[tap] = (sfg.name, final.block_id)
        return ast.Name(identifier=tap, location=stmt.location)

    def _attach_sample_control(self, block) -> None:
        sfg = self.compiler.sfg
        if self._sample_control_signal is not None:
            sfg.bind_control(self._sample_control_signal, block)
        elif self._sample_control_block is not None:
            from repro.vhif.sfg import CONTROL_PORT

            sfg.connect(self._sample_control_block, block, port=CONTROL_PORT)
        else:
            raise CompileError(
                "sampled signal assignment needs a triggering event",
                self.process.location,
            )

    def _lower_case(self, stmt: ast.CaseStmt) -> ast.IfStmt:
        branches: List[Tuple[ast.Expression, List[ast.SequentialStmt]]] = []
        for choices, body in stmt.alternatives:
            for choice in choices:
                test = ast.BinaryOp(operator="=", left=stmt.selector, right=choice)
                branches.append((test, list(body)))
        return ast.IfStmt(
            branches=branches,
            else_body=list(stmt.others or []),
            location=stmt.location,
        )

    def _emit_branches(
        self,
        stmt: ast.IfStmt,
        entries: List[Tuple[str, Condition]],
        current: Optional[str],
    ) -> List[Tuple[str, Condition]]:
        """Emit an if/elsif/else as conditional arcs between states."""
        if current is not None:
            # Branch decisions start from the state that just closed.
            entries = [(current, ALWAYS)]
        exits: List[Tuple[str, Condition]] = []
        taken: List[Condition] = []
        for condition, body in stmt.branches:
            arc = self._arc_condition(condition)
            guard: Condition = (
                arc
                if not taken
                else AllOf(operands=tuple([Not(operand=c) for c in taken] + [arc]))
            )
            branch_entries = [
                (state, _combine(entry_cond, guard)) for state, entry_cond in entries
            ]
            exits.extend(self._emit_chain(body, branch_entries))
            taken.append(arc)
        otherwise: Condition = (
            Not(operand=taken[0])
            if len(taken) == 1
            else AllOf(operands=tuple(Not(operand=c) for c in taken))
        )
        if stmt.else_body:
            else_entries = [
                (state, _combine(entry_cond, otherwise))
                for state, entry_cond in entries
            ]
            exits.extend(self._emit_chain(stmt.else_body, else_entries))
        else:
            exits.extend(
                (state, _combine(entry_cond, otherwise))
                for state, entry_cond in entries
            )
        return exits

    # -- main ----------------------------------------------------------------------

    def compile(self) -> Fsm:
        resume = self._compile_sensitivity()
        exits = self._emit_chain(self.process.body, [(START_STATE, resume)])
        # Exits suspend implicitly (no arcs needed): after the last state
        # the process waits in it until the next resume would need an arc
        # from start.  We model suspension by arcs back to start only when
        # a chain produced no state at all (degenerate process).
        del exits
        self.fsm.validate()
        return self.fsm


def _combine(first: Condition, second: Condition) -> Condition:
    if first is ALWAYS:
        return second
    if second is ALWAYS:
        return first
    return AllOf(operands=(first, second))


def compile_process(
    process: ast.ProcessStmt,
    design: AnalyzedDesign,
    vhif: VhifDesign,
    compiler: ExprCompiler,
    name: str,
) -> Fsm:
    """Compile one process statement into an FSM (see module docs)."""
    return ProcessCompiler(process, design, vhif, compiler, name).compile()
