"""Compilation of procedural statements into pure dataflow.

A procedural is "a pure functional block computing analog outputs from
its inputs without relying on any state information" (paper Section 4).
Instruction sequencing is preserved by data dependence alone: the output
of the block for an assignment becomes an input of the block for any
following statement referring to the same name.

* assignments rebind names to new blocks;
* ``if`` statements merge divergent bindings with analog multiplexers;
* ``for`` loops are unrolled (bounds are static by the VASS rules);
* ``while`` loops use the Figure-4 sampling structure
  (:mod:`repro.compiler.whileloop`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.diagnostics import CompileError
from repro.vass import ast_nodes as ast
from repro.vass.semantics import AnalyzedDesign, SemanticError, eval_static
from repro.compiler.conditional import classify_condition
from repro.compiler.expressions import ExprCompiler
from repro.compiler.whileloop import WhileLoopCompiler
from repro.vhif.sfg import Block, BlockKind


class ProceduralCompiler:
    """Compiles one procedural statement into signal-flow blocks."""

    def __init__(
        self,
        procedural: ast.ProceduralStmt,
        design: AnalyzedDesign,
        compiler: ExprCompiler,
    ):
        self.procedural = procedural
        self.design = design
        self.compiler = compiler

    # -- helpers -------------------------------------------------------------

    def _compile_expr(
        self, expr: ast.Expression, bindings: Dict[str, Block]
    ) -> Block:
        self.compiler.bindings = dict(bindings)
        return self.compiler.compile(expr)

    def _static_int(self, expr: ast.Expression) -> int:
        try:
            value = eval_static(expr, self.design.scope)
        except SemanticError as err:
            raise CompileError(err.bare_message, expr.location)
        return int(round(float(value)))  # type: ignore[arg-type]

    # -- statement compilation ---------------------------------------------------

    def compile_body(
        self,
        stmts: Sequence[ast.SequentialStmt],
        bindings: Dict[str, Block],
    ) -> Dict[str, Block]:
        """Compile a statement list; returns the updated bindings."""
        current = dict(bindings)
        for stmt in stmts:
            if isinstance(stmt, ast.VariableAssignment):
                if stmt.index is not None:
                    raise CompileError(
                        "indexed assignment is not supported in procedurals",
                        stmt.location,
                    )
                current[stmt.target] = self._compile_expr(stmt.value, current)
            elif isinstance(stmt, ast.SignalAssignment):
                raise CompileError(
                    "signal assignment inside a procedural is not in VASS "
                    "(use a process)",
                    stmt.location,
                )
            elif isinstance(stmt, ast.IfStmt):
                current = self._compile_if(stmt, current)
            elif isinstance(stmt, ast.CaseStmt):
                current = self._compile_if(self._lower_case(stmt), current)
            elif isinstance(stmt, ast.ForStmt):
                current = self._compile_for(stmt, current)
            elif isinstance(stmt, ast.WhileStmt):
                loop = WhileLoopCompiler(self.compiler, self.compile_body)
                current = loop.compile(stmt, current)
            elif isinstance(stmt, ast.NullStmt):
                continue
            elif isinstance(stmt, ast.BreakStmt):
                continue
            else:
                raise CompileError(
                    f"unsupported statement {type(stmt).__name__} in "
                    "procedural",
                    stmt.location,
                )
        return current

    def _lower_case(self, stmt: ast.CaseStmt) -> ast.IfStmt:
        branches = []
        for choices, body in stmt.alternatives:
            for choice in choices:
                test = ast.BinaryOp(operator="=", left=stmt.selector, right=choice)
                branches.append((test, list(body)))
        return ast.IfStmt(
            branches=branches,
            else_body=list(stmt.others or []),
            location=stmt.location,
        )

    def _compile_if(
        self, stmt: ast.IfStmt, bindings: Dict[str, Block]
    ) -> Dict[str, Block]:
        """Compile both arms, then merge divergent bindings with MUXes."""
        arms: List[Dict[str, Block]] = []
        controls = []
        for condition, body in stmt.branches:
            self.compiler.bindings = dict(bindings)
            controls.append(
                classify_condition(condition, self.design, self.compiler)
            )
            arms.append(self.compile_body(body, bindings))
        else_bindings = self.compile_body(stmt.else_body, bindings)

        targets: Set[str] = set()
        for arm in arms + [else_bindings]:
            for name, block in arm.items():
                if bindings.get(name) is not block:
                    targets.add(name)
        merged = dict(bindings)
        for name in sorted(targets):
            current: Optional[Block] = else_bindings.get(name, bindings.get(name))
            if current is None:
                raise CompileError(
                    f"{name!r} is assigned in only one branch and has no "
                    "prior value",
                    stmt.location,
                )
            for control, arm in zip(reversed(controls), reversed(arms)):
                arm_block = arm.get(name, bindings.get(name))
                if arm_block is None:
                    raise CompileError(
                        f"{name!r} has no value in one branch", stmt.location
                    )
                mux = self.compiler.sfg.add(BlockKind.MUX, n_inputs=2)
                true_value, false_value = arm_block, current
                if not control.polarity:
                    true_value, false_value = false_value, true_value
                self.compiler.sfg.connect(true_value, mux, port=0)
                self.compiler.sfg.connect(false_value, mux, port=1)
                control.attach(self.compiler, mux)
                current = mux
            merged[name] = current
        return merged

    def _compile_for(
        self, stmt: ast.ForStmt, bindings: Dict[str, Block]
    ) -> Dict[str, Block]:
        """Unroll the loop: the bounds are static by the VASS rules."""
        low = self._static_int(stmt.low)
        high = self._static_int(stmt.high)
        if high - low + 1 > 64:
            raise CompileError(
                f"for-loop unrolls to {high - low + 1} iterations; "
                "VASS caps unrolling at 64",
                stmt.location,
            )
        current = dict(bindings)
        for i in range(low, high + 1):
            # The loop variable is a compile-time constant per iteration.
            self.compiler.static_bindings[stmt.variable] = float(i)
            try:
                current = self.compile_body(stmt.body, current)
            finally:
                self.compiler.static_bindings.pop(stmt.variable, None)
        current.pop(stmt.variable, None)
        return current

    # -- entry point -----------------------------------------------------------------

    def compile(self, bindings: Dict[str, Block]) -> Dict[str, Block]:
        """Compile the whole procedural; returns final name bindings."""
        return self.compile_body(self.procedural.body, bindings)


def compile_procedural(
    procedural: ast.ProceduralStmt,
    design: AnalyzedDesign,
    compiler: ExprCompiler,
    bindings: Dict[str, Block],
) -> Dict[str, Block]:
    """Compile one procedural statement (see module docs)."""
    return ProceduralCompiler(procedural, design, compiler).compile(bindings)
