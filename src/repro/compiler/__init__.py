"""The VASS-to-VHIF compiler (paper Section 4)."""

from repro.compiler.dae import Causalization, DaeCompiler, dot_name, strip_dots
from repro.compiler.driver import (
    CompilerOptions,
    DesignCompiler,
    compile_design,
    enumerate_solvers,
)
from repro.compiler.expressions import ExprCompiler
from repro.compiler.procedural import ProceduralCompiler, compile_procedural
from repro.compiler.process import ProcessCompiler, compile_process
from repro.compiler.whileloop import WhileLoopCompiler, loop_variables
from repro.compiler import symbolic

__all__ = [
    "Causalization",
    "CompilerOptions",
    "DaeCompiler",
    "DesignCompiler",
    "ExprCompiler",
    "ProceduralCompiler",
    "ProcessCompiler",
    "WhileLoopCompiler",
    "compile_design",
    "compile_procedural",
    "compile_process",
    "dot_name",
    "enumerate_solvers",
    "loop_variables",
    "strip_dots",
    "symbolic",
]
