"""The Figure-4 while-loop transformation.

VASS while-loops denote a *sampling functionality*.  The paper avoids
multiplexing the conditional's inputs by duplicating the conditional
into two distinct blocks:

* ``icontr`` — evaluates the conditional on values computed *outside*
  the loop and decides whether the loop is entered (inputs are routed to
  the loop body through switch ``sw1``);
* ``contr`` — evaluates the conditional on the loop's own values; while
  true, sample-and-hold ``S/H1`` trails the loop body's output and
  switch ``sw3`` isolates ``S/H2``; when it turns false, ``sw3`` closes
  and ``S/H2`` latches the result, holding it constant while the loop
  body executes again.

The loop iterates once per sampling period: the feedback path runs
through ``S/H1``, a stateful block, so each simulator step (and, in
hardware, each loop delay) advances the iteration by one.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.diagnostics import CompileError
from repro.vass import ast_nodes as ast
from repro.compiler.expressions import ExprCompiler
from repro.vhif.sfg import Block, BlockKind, CONTROL_PORT


def loop_variables(stmt: ast.WhileStmt) -> Tuple[List[str], List[str]]:
    """(carried, read-only) variable names of a while loop.

    *Carried* variables are assigned in the body; they iterate through
    the feedback path.  *Read-only* names are consumed by the body or
    condition but never assigned.
    """
    assigned: List[str] = []
    for inner in ast.walk_sequential(stmt.body):
        if isinstance(inner, ast.VariableAssignment) and inner.target not in assigned:
            assigned.append(inner.target)
        if isinstance(inner, ast.SignalAssignment):
            raise CompileError(
                "signal assignment inside a while loop is not synthesizable",
                inner.location,
            )
    reads: Set[str] = set(ast.referenced_names(stmt.condition))
    for inner in ast.walk_sequential(stmt.body):
        if isinstance(inner, ast.VariableAssignment):
            reads |= set(ast.referenced_names(inner.value))
    read_only = sorted(reads - set(assigned))
    return assigned, read_only


class WhileLoopCompiler:
    """Compiles one while statement into the Figure-4 block structure."""

    def __init__(self, compiler: ExprCompiler, compile_body):
        """``compile_body(bindings) -> bindings`` compiles the loop body
        as pure dataflow under the given name bindings (provided by the
        procedural compiler to avoid a circular import)."""
        self.compiler = compiler
        self._compile_body = compile_body

    def compile(
        self, stmt: ast.WhileStmt, bindings: Dict[str, Block]
    ) -> Dict[str, Block]:
        sfg = self.compiler.sfg
        carried, _read_only = loop_variables(stmt)
        if not carried:
            raise CompileError(
                "while loop body assigns no variables; nothing to iterate",
                stmt.location,
            )
        for name in carried:
            if name not in bindings:
                raise CompileError(
                    f"loop variable {name!r} has no value before the loop "
                    "(VASS while loops refine an initial value)",
                    stmt.location,
                )

        # -- icontr: the entry conditional, evaluated on outside values.
        self.compiler.bindings = dict(bindings)
        icontr = self.compiler.compile_condition(stmt.condition)
        icontr.name = f"icontr{icontr.block_id}"

        # -- sw1 per carried variable: routes the entry value in.
        entry_switches: Dict[str, Block] = {}
        for name in carried:
            sw1 = sfg.add(BlockKind.SWITCH, name=f"sw1_{name}")
            sfg.connect(bindings[name], sw1, port=0)
            sfg.connect(icontr, sw1, port=CONTROL_PORT)
            entry_switches[name] = sw1

        # -- current iterate: entry value or S/H1 feedback.  The S/H1
        #    blocks are created first so the feedback edge can close.
        holds: Dict[str, Block] = {}
        muxes: Dict[str, Block] = {}
        for name in carried:
            sh1 = sfg.add(BlockKind.SAMPLE_HOLD, name=f"sh1_{name}")
            holds[name] = sh1
            mux = sfg.add(BlockKind.MUX, n_inputs=2, name=f"iter_{name}")
            sfg.connect(sh1, mux, port=0)  # control true: keep iterating
            sfg.connect(entry_switches[name], mux, port=1)
            muxes[name] = mux

        # -- the loop body as pure dataflow over the current iterate.
        body_bindings = dict(bindings)
        for name in carried:
            body_bindings[name] = muxes[name]
        result_bindings = self._compile_body(stmt.body, body_bindings)

        # -- contr: the loop conditional on the loop's own values.
        self.compiler.bindings = dict(body_bindings)
        contr = self.compiler.compile_condition(stmt.condition)
        contr.name = f"contr{contr.block_id}"
        inverted = sfg.add(BlockKind.NEG)
        sfg.connect(contr, inverted)
        not_contr = sfg.add(
            BlockKind.COMPARATOR, threshold=-0.5, name=f"ncontr{contr.block_id}"
        )
        sfg.connect(inverted, not_contr)

        outputs = dict(bindings)
        for name in carried:
            # S/H1 trails the body output while contr is true.
            sfg.connect(result_bindings[name], holds[name], port=0)
            sfg.connect(contr, holds[name], port=CONTROL_PORT)
            sfg.connect(contr, muxes[name], port=CONTROL_PORT)
            # sw3 guards S/H2 against in-flight values: it tracks the
            # iterate while the loop runs and freezes the converged
            # value the moment the conditional turns false; S/H2 then
            # latches it and holds the output constant while the loop
            # body executes again.
            sw3 = sfg.add(BlockKind.SWITCH, name=f"sw3_{name}")
            sfg.connect(muxes[name], sw3, port=0)
            sfg.connect(contr, sw3, port=CONTROL_PORT)
            sh2 = sfg.add(BlockKind.SAMPLE_HOLD, name=f"sh2_{name}")
            sfg.connect(sw3, sh2, port=0)
            sfg.connect(not_contr, sh2, port=CONTROL_PORT)
            outputs[name] = sh2
        return outputs
