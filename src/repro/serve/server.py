"""``vase serve``: the synthesis flow as a live HTTP service.

Stdlib only — :class:`http.server.ThreadingHTTPServer` fronting a
:class:`~repro.serve.queue.JobManager`.  Endpoints:

* ``POST /jobs`` — submit VASS source + whitelisted options; 202 with
  the job id (== telemetry run id), 400 on validation failure, 503
  when the bounded queue is full;
* ``GET /jobs`` — all known jobs, brief form;
* ``GET /jobs/<id>`` — full status, including the available artifacts;
* ``POST /jobs/<id>/cancel`` — cancel a queued or running job (202;
  409 once terminal); queued jobs are dequeued immediately, running
  jobs stop cooperatively at the flow's next cancellation point;
* ``GET /jobs/<id>/events`` — the job's telemetry stream as
  Server-Sent Events: replay from seq 0 (or ``Last-Event-ID`` /
  ``?since=N``), then live tail with heartbeats, ending with an
  ``end`` frame once the job is terminal and fully delivered;
* ``GET /jobs/<id>/report|netlist|spice|explain`` — rendered
  artifacts (404 until the job succeeded);
* ``GET /metrics`` — Prometheus exposition of the live registry plus
  the ``vase_serve_jobs_queued``/``_running``/``_done_total`` server
  series;
* ``GET /history``, ``GET /stats`` — the run ledger as JSON;
* ``GET /healthz`` — liveness; ``POST /shutdown`` — graceful stop.

With a ``token`` configured, every endpoint except ``GET /healthz``
requires ``Authorization: Bearer <token>`` and answers 401 otherwise.

Concurrency model: every request runs on its own handler thread
(SSE streams hold theirs for the job's lifetime), synthesis runs on
the manager's resident worker pool, and all of them meet only at the
telemetry bus and the manager's locks — the handler never calls into
the flow directly.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.serve.queue import (
    JobConflictError,
    JobManager,
    JobOptionsError,
    QueueFullError,
    UnknownJobError,
)
from repro.serve.sse import (
    END_EVENT,
    format_comment,
    format_event,
    format_message,
)

#: largest accepted POST body (VASS sources are small)
MAX_BODY_BYTES = 2 * 1024 * 1024

#: allowed top-level keys of a POST /jobs body
SUBMIT_KEYS = ("source", "entity", "label", "options")

#: artifact names servable under /jobs/<id>/<name>
ARTIFACT_TYPES = {
    "report": "text/markdown; charset=utf-8",
    "netlist": "text/plain; charset=utf-8",
    "spice": "text/plain; charset=utf-8",
    "explain": "text/html; charset=utf-8",
}

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def render_server_metrics(manager: JobManager) -> str:
    """The /metrics body: live registry + server job gauges."""
    from repro.instrument import metrics, render_prometheus
    from repro.instrument.promexport import render_family

    counts = manager.counts()
    text = render_prometheus(metrics().snapshot())
    text += render_family(
        "vase_serve_jobs_queued", "gauge",
        "Jobs waiting in the serve queue.",
        [({}, counts["queued"])],
    )
    text += render_family(
        "vase_serve_jobs_running", "gauge",
        "Jobs currently executing on the worker pool.",
        [({}, counts["running"])],
    )
    text += render_family(
        "vase_serve_jobs_done_total", "counter",
        "Completed jobs by outcome.",
        [({"outcome": name}, value)
         for name, value in sorted(counts["done"].items())],
    )
    return text


class VaseServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the serve-layer wiring."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        manager: JobManager,
        heartbeat_s: float = 10.0,
        verbose: bool = False,
        token: Optional[str] = None,
    ):
        super().__init__(address, VaseServeHandler)
        self.manager = manager
        self.heartbeat_s = heartbeat_s
        self.verbose = verbose
        #: bearer token every request (except /healthz) must present;
        #: None disables authentication (loopback binds)
        self.token = token


class VaseServeHandler(BaseHTTPRequestHandler):
    server_version = "vase-serve"

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, fmt, *args):  # noqa: D102 - quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    # -- response helpers ----------------------------------------------------

    def _send_body(
        self, status: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, payload, status: int = 200) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self._send_body(status, body, "application/json; charset=utf-8")

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    # -- bearer-token authentication -----------------------------------------

    def _authorized(self) -> bool:
        token = getattr(self.server, "token", None)
        if not token:
            return True
        header = self.headers.get("Authorization") or ""
        return header == f"Bearer {token}"

    def _send_unauthorized(self) -> None:
        body = (json.dumps(
            {"error": "missing or invalid bearer token"}, indent=2
        ) + "\n").encode("utf-8")
        self.send_response(401)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("WWW-Authenticate", "Bearer")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib API
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        query = parse_qs(url.query)
        try:
            if parts == ["healthz"]:
                # Liveness stays unauthenticated: probes must not need
                # the token.
                return self._send_json({"status": "ok"})
            if not self._authorized():
                return self._send_unauthorized()
            if not parts:
                return self._get_index()
            if parts == ["metrics"]:
                body = render_server_metrics(self.manager).encode("utf-8")
                return self._send_body(200, body, PROM_CONTENT_TYPE)
            if parts == ["history"]:
                return self._get_history(query)
            if parts == ["stats"]:
                return self._get_stats()
            if parts == ["jobs"]:
                return self._send_json({
                    "jobs": [
                        job.as_dict(brief=True)
                        for job in self.manager.jobs()
                    ],
                })
            if parts[0] == "jobs" and len(parts) == 2:
                return self._send_json(self.manager.get(parts[1]).as_dict())
            if parts[0] == "jobs" and len(parts) == 3:
                job = self.manager.get(parts[1])
                if parts[2] == "events":
                    return self._stream_events(job, query)
                if parts[2] in ARTIFACT_TYPES:
                    return self._get_artifact(job, parts[2])
            return self._send_error_json(404, f"no such path: {url.path}")
        except UnknownJobError as err:
            return self._send_error_json(404, str(err))
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away mid-stream

    def do_POST(self) -> None:  # noqa: N802 - stdlib API
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        if not self._authorized():
            return self._send_unauthorized()
        if parts == ["jobs"]:
            return self._post_job()
        if parts[:1] == ["jobs"] and len(parts) == 3 \
                and parts[2] == "cancel":
            return self._post_cancel(parts[1])
        if parts == ["shutdown"]:
            return self._post_shutdown()
        return self._send_error_json(404, f"no such path: {url.path}")

    # -- endpoints -----------------------------------------------------------

    def _get_index(self) -> None:
        self._send_json({
            "service": "vase serve",
            "endpoints": [
                "POST /jobs", "GET /jobs", "GET /jobs/<id>",
                "POST /jobs/<id>/cancel",
                "GET /jobs/<id>/events (SSE)",
                *(f"GET /jobs/<id>/{name}" for name in
                  sorted(ARTIFACT_TYPES)),
                "GET /metrics", "GET /history", "GET /stats",
                "GET /healthz", "POST /shutdown",
            ],
        })

    def _read_json_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise JobOptionsError("a JSON request body is required")
        if length > MAX_BODY_BYTES:
            raise JobOptionsError(
                f"request body too large ({length} bytes, "
                f"limit {MAX_BODY_BYTES})"
            )
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise JobOptionsError(f"request body is not JSON: {err}")
        if not isinstance(payload, dict):
            raise JobOptionsError("request body must be a JSON object")
        return payload

    def _post_job(self) -> None:
        try:
            payload = self._read_json_body()
            unknown = sorted(set(payload) - set(SUBMIT_KEYS))
            if unknown:
                raise JobOptionsError(
                    f"unknown field(s): {', '.join(unknown)} "
                    f"(allowed: {', '.join(SUBMIT_KEYS)})"
                )
            options = payload.get("options")
            if options is not None and not isinstance(options, dict):
                raise JobOptionsError("options must be a JSON object")
            job = self.manager.submit(
                source=payload.get("source", ""),
                entity=payload.get("entity"),
                label=payload.get("label"),
                options=options,
            )
        except QueueFullError as err:
            return self._send_error_json(503, str(err))
        except JobOptionsError as err:
            return self._send_error_json(400, str(err))
        self._send_json({
            "id": job.id,
            "status": job.status,
            "links": {
                "status": f"/jobs/{job.id}",
                "events": f"/jobs/{job.id}/events",
            },
        }, status=202)

    def _post_cancel(self, job_id: str) -> None:
        """Cancel a queued or running job (202; 404 unknown, 409
        already terminal)."""
        try:
            job = self.manager.cancel(job_id)
        except UnknownJobError as err:
            return self._send_error_json(404, str(err))
        except JobConflictError as err:
            return self._send_error_json(409, str(err))
        self._send_json({
            "id": job.id,
            "status": job.status,
            "cancel_requested": True,
        }, status=202)

    def _post_shutdown(self) -> None:
        self._send_json({"status": "shutting down"})
        # shutdown() blocks until the serve loop (another thread)
        # exits, which is exactly the graceful semantics we want; the
        # response above is already on the wire.
        self.server.shutdown()

    def _get_artifact(self, job, name: str) -> None:
        text = job.artifacts.get(name)
        if text is None:
            detail = (
                "job not finished yet" if not job.terminal
                else "artifact unavailable for this outcome"
            )
            return self._send_error_json(
                404, f"no {name!r} artifact for job {job.id} ({detail})"
            )
        self._send_body(200, text.encode("utf-8"), ARTIFACT_TYPES[name])

    def _get_history(self, query) -> None:
        ledger = self.manager.ledger
        if ledger is None:
            return self._send_error_json(404, "run ledger is disabled")
        limit = None
        if "limit" in query:
            try:
                limit = max(1, int(query["limit"][0]))
            except ValueError:
                return self._send_error_json(400, "limit must be an integer")
        records = ledger.tail(
            limit=limit,
            outcome=query.get("outcome", [None])[0],
            source=query.get("source", [None])[0],
        )
        self._send_json({
            "ledger": str(ledger.path),
            "records": [record.as_dict() for record in records],
        })

    def _get_stats(self) -> None:
        from repro.instrument import summarize

        ledger = self.manager.ledger
        if ledger is None:
            return self._send_error_json(404, "run ledger is disabled")
        stats = summarize(ledger.records())
        stats["ledger"] = str(ledger.path)
        self._send_json(stats)

    # -- the SSE stream ------------------------------------------------------

    def _stream_events(self, job, query) -> None:
        """Replay the job's events from ``since`` and tail live.

        The per-run seqs are dense and the per-job log is append-only,
        so a subscriber joining at any point gets seq ``since+1 .. N``
        with no gaps or duplicates; heartbeat comments keep the
        connection visibly alive through quiet stretches, and the
        stream closes itself with an ``end`` frame once the job is
        terminal and everything has been delivered.
        """
        last = -1
        if "since" in query:
            try:
                last = int(query["since"][0])
            except ValueError:
                return self._send_error_json(400, "since must be an integer")
        elif self.headers.get("Last-Event-ID"):
            try:
                last = int(self.headers["Last-Event-ID"])
            except ValueError:
                last = -1
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        heartbeat = getattr(self.server, "heartbeat_s", 10.0)
        if job.events.dropped:
            self.wfile.write(format_comment(
                f"{job.events.dropped} event(s) dropped from the "
                f"replay buffer"
            ))
        while True:
            events, closed = job.events.wait(last, timeout=heartbeat)
            for event in events:
                self.wfile.write(format_event(event))
                last = event.seq
            if events:
                self.wfile.flush()
            elif closed:
                # Terminal and fully delivered: end the stream.
                self.wfile.write(format_message(
                    json.dumps({"id": job.id, "status": job.status}),
                    event=END_EVENT,
                ))
                self.wfile.flush()
                return
            else:
                self.wfile.write(format_comment("heartbeat"))
                self.wfile.flush()


def create_server(
    host: str,
    port: int,
    manager: JobManager,
    heartbeat_s: float = 10.0,
    verbose: bool = False,
    token: Optional[str] = None,
) -> VaseServer:
    """A configured (not yet serving) :class:`VaseServer`.

    Pass ``port=0`` to bind an ephemeral port (tests); the bound
    address is ``server.server_address``.  ``token`` arms bearer-token
    authentication: every request except ``GET /healthz`` must carry
    ``Authorization: Bearer <token>`` or is answered with 401 (the CLI
    *requires* a token for non-loopback binds).
    """
    return VaseServer(
        (host, port), manager, heartbeat_s=heartbeat_s, verbose=verbose,
        token=token,
    )
