"""The ``vase serve`` job queue: bounded admission, resident workers.

A :class:`JobManager` owns everything the HTTP layer needs but nothing
HTTP-specific, so it is directly testable:

* **admission** — :meth:`JobManager.submit` validates the request
  payload against a whitelist of flow options
  (:func:`build_job_options`), assigns the job id (which doubles as
  the telemetry run id), and rejects with :class:`QueueFullError` once
  ``queue_limit`` jobs are already waiting;
* **execution** — a persistent
  :class:`~repro.pipeline.parallel.WorkerPool` of orchestration
  threads runs each job through
  :func:`~repro.robust.batch.run_source`, the batch runner's
  fault-isolating core, inside a
  :func:`~repro.instrument.events.run_scope` tagged with the job id —
  so every telemetry event of the job carries it.  With the
  ``process`` backend (``vase serve --executor process``) the
  synthesis itself is delegated to a resident
  :class:`~repro.pipeline.ProcessExecutor`: spawned workers run the
  flow off the GIL, share the cache's on-disk tier, and forward
  their telemetry over the result channel so SSE streams stay dense;
* **observability** — :meth:`JobManager.route`, subscribed to the
  process-wide bus, files each event into the owning job's bounded
  :class:`JobEventLog`; late SSE subscribers replay from seq 0 and
  then tail live, and :meth:`JobManager.counts` feeds the
  ``vase_serve_*`` gauges on ``/metrics``;
* **lifecycle** — :meth:`JobManager.cancel` cancels a job at any
  pre-terminal point (queued jobs are dequeued on the spot; running
  jobs are cancelled cooperatively through their
  :class:`~repro.robust.lifecycle.CancellationToken`, relayed to the
  worker pipe under the ``process`` backend), and
  :meth:`JobManager.drain` is the SIGTERM path: stop admission, let
  running jobs finish within a timeout, cancel the rest;
* **persistence** — every completed job is appended to the run ledger
  through :func:`~repro.instrument.ledger.record_for_result` /
  :func:`~repro.instrument.ledger.record_for_failure`, so ``/history``
  and ``/stats`` see served jobs exactly like CLI runs.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.instrument.events import (
    CATEGORY_LIFECYCLE,
    TelemetryEvent,
    active_bus,
    current_run_id,
    new_run_id,
    run_scope,
)
from repro.pipeline import (
    EXECUTOR_KINDS,
    ParallelOptions,
    ProcessExecutor,
    worker_cache,
)
from repro.pipeline.parallel import WorkerPool
from repro.robust.lifecycle import (
    CancellationToken,
    RunContext,
    run_context,
)

#: job states before the terminal batch buckets take over
STATUS_QUEUED = "queued"
STATUS_RUNNING = "running"
STATUS_CANCELLED = "cancelled"
#: terminal states (the batch runner's vocabulary plus ``cancelled``)
TERMINAL_STATUSES = ("ok", "degraded", "failed", STATUS_CANCELLED)

#: whitelisted per-job flow options a POST may override
ALLOWED_OPTIONS = (
    "deadline_s", "budget_s", "recovery", "explore_solvers",
    "executor", "workers", "jobs",
)
#: cap on the per-job ``workers``/``jobs`` override (solver-exploration
#: fan-out; the ``process`` backend is capped by the same bound)
MAX_JOB_FANOUT = 8

#: per-job event-log capacity; a full synthesis run is a few thousand
#: events, so replay-from-0 survives any realistic job
DEFAULT_EVENT_CAPACITY = 65536

#: terminal jobs kept for artifact fetches before pruning
DEFAULT_MAX_JOBS = 512


class JobError(Exception):
    """Base of the admission errors the HTTP layer maps to 4xx/503."""


class JobOptionsError(JobError):
    """The request payload failed whitelist validation (HTTP 400)."""


class QueueFullError(JobError):
    """The bounded queue is at capacity, or the server is shutting
    down (HTTP 503)."""


class UnknownJobError(JobError):
    """No job with that id (HTTP 404)."""


class JobConflictError(JobError):
    """The job is already terminal and cannot be cancelled (HTTP 409)."""


def build_job_options(base, payload: Optional[Dict[str, object]]):
    """A per-job :class:`~repro.flow.FlowOptions` from the whitelist.

    ``payload`` is the request's ``options`` object.  Only
    :data:`ALLOWED_OPTIONS` may appear; anything else — unknown keys,
    wrong types, out-of-range values — raises :class:`JobOptionsError`
    (the server's 400).  The returned options share the base's cache
    (the whole point of the resident service) but never its ledger:
    the manager records outcomes itself, exactly once per job.
    """
    payload = dict(payload or {})
    unknown = sorted(set(payload) - set(ALLOWED_OPTIONS))
    if unknown:
        raise JobOptionsError(
            f"unknown option(s): {', '.join(unknown)} "
            f"(allowed: {', '.join(ALLOWED_OPTIONS)})"
        )
    options = replace(base, ledger=None)
    if "deadline_s" in payload:
        deadline = payload["deadline_s"]
        if isinstance(deadline, bool) or not isinstance(
            deadline, (int, float)
        ) or deadline <= 0:
            raise JobOptionsError("deadline_s must be a positive number")
        options = replace(
            options,
            mapper=replace(base.mapper, deadline_s=float(deadline)),
        )
    if "budget_s" in payload:
        # The hard whole-flow budget: unlike the mapper's soft
        # deadline_s (which truncates the search and keeps the
        # incumbent), an exhausted budget cancels the run with a
        # DeadlineExceeded and a terminal ``cancelled`` outcome.
        budget = payload["budget_s"]
        if isinstance(budget, bool) or not isinstance(
            budget, (int, float)
        ) or budget <= 0:
            raise JobOptionsError("budget_s must be a positive number")
        options = replace(options, deadline_s=float(budget))
    for name in ("recovery", "explore_solvers"):
        if name in payload:
            value = payload[name]
            if not isinstance(value, bool):
                raise JobOptionsError(f"{name} must be a boolean")
            options = replace(options, **{name: value})
    parallel = base.parallel
    kind: Optional[str] = None
    width: Optional[int] = None
    if "executor" in payload:
        kind = payload["executor"]
        if not isinstance(kind, str) or kind not in EXECUTOR_KINDS:
            raise JobOptionsError(
                f"executor must be one of {', '.join(EXECUTOR_KINDS)}"
            )
    if "workers" in payload:
        width = payload["workers"]
        if isinstance(width, bool) or not isinstance(width, int) \
                or not 1 <= width <= MAX_JOB_FANOUT:
            raise JobOptionsError(
                f"workers must be an integer in [1, {MAX_JOB_FANOUT}]"
            )
    if "jobs" in payload:
        fanout = payload["jobs"]
        if isinstance(fanout, bool) or not isinstance(fanout, int) \
                or not 1 <= fanout <= MAX_JOB_FANOUT:
            raise JobOptionsError(
                f"jobs must be an integer in [1, {MAX_JOB_FANOUT}]"
            )
        # The deprecated alias: only meaningful when the first-class
        # knobs are absent.
        if kind is None and width is None:
            parallel = ParallelOptions.from_jobs(fanout)
    if kind is not None or width is not None:
        if width is None:
            width = max(1, parallel.workers)
        if kind is None:
            kind = (
                parallel.executor if parallel.executor != "serial"
                else ("thread" if width > 1 else "serial")
            )
        parallel = ParallelOptions(executor=kind, workers=width)
    if parallel != base.parallel:
        options = replace(options, parallel=parallel)
    return options


def render_artifacts(label: str, result) -> Dict[str, str]:
    """Render the fetchable artifacts of a finished synthesis.

    Module-level (not a manager method) because the ``process``
    execution backend renders worker-side: strings pickle cheaply,
    live :class:`~repro.flow.SynthesisResult` objects should not have
    to."""
    from repro.report import generate_report
    from repro.spice import to_spice_deck

    artifacts = {
        "netlist": result.netlist.describe() + "\n",
        "spice": to_spice_deck(result.netlist),
        "report": generate_report(result, title=label),
    }
    if result.explog is not None:
        try:
            from repro.instrument.explain import render_exploration_html

            artifacts["explain"] = render_exploration_html(
                result, title=label
            )
        except Exception:  # noqa: BLE001 - optional artifact
            pass
    return artifacts


def _run_job_remote(
    source: str,
    label: str,
    entity: Optional[str],
    options,
    library,
    cache_dir: Optional[str],
    want_record: bool,
) -> Dict[str, object]:
    """One served job inside a worker process.

    Runs the same fault-isolating core as the thread path
    (:func:`~repro.robust.batch.run_source`), renders the artifacts
    and builds the ledger record here — worker-side — and returns only
    picklable plain data."""
    from dataclasses import replace as _replace

    from repro.instrument.ledger import (
        record_for_cancelled,
        record_for_failure,
        record_for_result,
    )
    from repro.robust.batch import run_source

    opts = options
    if cache_dir is not None:
        opts = _replace(options, cache=worker_cache(cache_dir))
    entry, result, error = run_source(
        source, label, opts, library, entity_name=entity
    )
    artifacts: Dict[str, str] = {}
    record = None
    if result is not None:
        artifacts = render_artifacts(label, result)
        if want_record:
            record = record_for_result(
                result, source, label, entry.elapsed_s, options,
            )
    elif want_record and entry.status == STATUS_CANCELLED:
        record = record_for_cancelled(
            current_run_id() or "", source, label, entry.elapsed_s,
            options, entry.error or "cancelled",
        )
    elif want_record:
        record = record_for_failure(
            current_run_id() or "", source, label, entry.elapsed_s,
            options,
            error if error is not None
            else RuntimeError(entry.error or "failed"),
        )
    return {"entry": entry, "artifacts": artifacts, "record": record}


class JobEventLog:
    """Bounded per-job event buffer with replay and blocking tail.

    The serve-side sibling of
    :class:`~repro.instrument.events.RingBuffer`: bounded like it, but
    with a condition variable so SSE handlers can block for the next
    event instead of polling, and a ``closed`` flag the manager raises
    once the job is terminal and no further events can arrive —
    the signal that lets a stream end instead of heartbeating forever.
    """

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        self.closed = False
        self._events: deque = deque(maxlen=capacity)
        self._cond = threading.Condition()

    def append(self, event: TelemetryEvent) -> None:
        with self._cond:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._events)

    def last_seq(self) -> int:
        """Highest buffered seq, or -1 while empty."""
        with self._cond:
            return self._events[-1].seq if self._events else -1

    def since(self, seq: int) -> List[TelemetryEvent]:
        """Buffered events with ``seq`` strictly greater than ``seq``
        (pass -1 for a full replay), oldest first."""
        with self._cond:
            return [e for e in self._events if e.seq > seq]

    def wait(
        self, seq: int, timeout: Optional[float] = None
    ) -> Tuple[List[TelemetryEvent], bool]:
        """Block until an event newer than ``seq`` arrives, the log
        closes, or ``timeout`` elapses; returns ``(new_events,
        closed)``.  An empty list with ``closed=False`` is the
        heartbeat case."""
        with self._cond:
            self._cond.wait_for(
                lambda: self.closed
                or (self._events and self._events[-1].seq > seq),
                timeout,
            )
            return [e for e in self._events if e.seq > seq], self.closed


@dataclass
class Job:
    """One submitted synthesis, from POST body to artifacts."""

    id: str
    label: str
    source: str
    entity: Optional[str]
    options: object
    status: str = STATUS_QUEUED
    created_ts: float = 0.0
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    elapsed_s: float = 0.0
    design: Optional[str] = None
    summary: str = ""
    error: str = ""
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    recovery: List[Dict[str, object]] = field(default_factory=list)
    #: rendered artifacts by name (report/netlist/spice/explain)
    artifacts: Dict[str, str] = field(default_factory=dict)
    events: JobEventLog = field(default_factory=JobEventLog)
    #: cooperative-cancellation token shared with the job's run context
    token: CancellationToken = field(
        default_factory=CancellationToken, repr=False
    )
    #: True once a cancel was requested (queued or running)
    cancel_requested: bool = False
    #: the in-flight process-pool future (``--executor process`` only)
    remote_future: Optional[object] = field(default=None, repr=False)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def as_dict(self, brief: bool = False) -> Dict[str, object]:
        data: Dict[str, object] = {
            "id": self.id,
            "label": self.label,
            "status": self.status,
            "design": self.design,
            "created_ts": self.created_ts,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
            "elapsed_s": round(self.elapsed_s, 6),
            "events": {
                "count": len(self.events),
                "dropped": self.events.dropped,
            },
        }
        if brief:
            return data
        data.update({
            "summary": self.summary,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
            "errors": list(self.errors),
            "warnings": list(self.warnings),
            "recovery": list(self.recovery),
            "artifacts": sorted(self.artifacts),
        })
        return data


class JobManager:
    """Admission, execution and bookkeeping for served jobs."""

    def __init__(
        self,
        options,
        library=None,
        ledger=None,
        workers: int = 2,
        queue_limit: int = 64,
        event_capacity: int = DEFAULT_EVENT_CAPACITY,
        max_jobs: int = DEFAULT_MAX_JOBS,
        execution: Optional[ParallelOptions] = None,
    ):
        """``execution`` selects the resident backend jobs run on:
        ``thread`` (default; ``workers`` wide, the pre-executor
        behavior) or ``process`` — the orchestration threads stay, but
        each job's synthesis is delegated to a resident
        :class:`~repro.pipeline.ProcessExecutor` of the same width.
        ``serial`` degrades to one orchestration thread."""
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.options = options
        self.library = library
        self.ledger = ledger
        self.queue_limit = queue_limit
        self.event_capacity = event_capacity
        self.max_jobs = max_jobs
        self.execution = execution or ParallelOptions(
            executor="thread", workers=workers,
        )
        width = (
            1 if self.execution.executor == "serial"
            else max(1, self.execution.workers)
        )
        self._pool = WorkerPool(width)
        self._remote: Optional[ProcessExecutor] = (
            ProcessExecutor(
                width, task_timeout_s=self.execution.task_timeout_s
            )
            if self.execution.executor == "process" else None
        )
        self._lock = threading.Lock()
        self._jobs: "Dict[str, Job]" = {}
        self._closed = False
        #: completed jobs by terminal status, for /metrics
        self.done: Dict[str, int] = {name: 0 for name in TERMINAL_STATUSES}

    # -- telemetry routing (bus subscriber) --------------------------------

    def route(self, event: TelemetryEvent) -> None:
        """File a bus event into the owning job's event log.

        Runs under the bus dispatch lock, so it must stay cheap: one
        dict lookup and a deque append.  Events whose run id is no
        job's (CLI runs sharing the process, the unscoped sentinel)
        are ignored.
        """
        job = self._jobs.get(event.run_id)
        if job is not None:
            job.events.append(event)

    # -- admission ----------------------------------------------------------

    def submit(
        self,
        source: str,
        entity: Optional[str] = None,
        label: Optional[str] = None,
        options: Optional[Dict[str, object]] = None,
    ) -> Job:
        """Validate, enqueue and schedule one job; returns it queued."""
        if not isinstance(source, str) or not source.strip():
            raise JobOptionsError("source must be a non-empty string")
        if entity is not None and not isinstance(entity, str):
            raise JobOptionsError("entity must be a string")
        if label is not None and not isinstance(label, str):
            raise JobOptionsError("label must be a string")
        job_options = build_job_options(self.options, options)
        job = Job(
            id=new_run_id(),
            label=label or f"<job {entity or 'vass'}>",
            source=source,
            entity=entity,
            options=job_options,
            created_ts=time.time(),
            events=JobEventLog(self.event_capacity),
        )
        with self._lock:
            if self._closed:
                raise QueueFullError("server is shutting down")
            queued = sum(
                1 for j in self._jobs.values()
                if j.status == STATUS_QUEUED
            )
            if queued >= self.queue_limit:
                raise QueueFullError(
                    f"job queue is full ({queued} waiting, "
                    f"limit {self.queue_limit})"
                )
            self._prune_locked()
            self._jobs[job.id] = job
        # Seq 0 of the job's run: the queued lifecycle event, published
        # outside the manager lock (bus dispatch takes its own lock and
        # calls back into route()).
        bus = active_bus()
        if bus is not None:
            with run_scope(job.id):
                bus.publish(
                    CATEGORY_LIFECYCLE,
                    {"kind": "job", "phase": "queued", "label": job.label},
                )
        self._pool.submit(lambda: self._execute(job))
        return job

    def _prune_locked(self) -> None:
        """Drop the oldest terminal jobs once ``max_jobs`` is exceeded."""
        overflow = len(self._jobs) + 1 - self.max_jobs
        if overflow <= 0:
            return
        for job_id in [
            job.id for job in self._jobs.values() if job.terminal
        ][:overflow]:
            del self._jobs[job_id]

    # -- execution (worker threads) -----------------------------------------

    def _execute(self, job: Job) -> None:
        from repro.instrument.ledger import (
            record_for_cancelled,
            record_for_failure,
            record_for_result,
        )
        from repro.robust.batch import run_source

        with self._lock:
            if job.status != STATUS_QUEUED:
                # Cancelled while queued: cancel() already finalized
                # the job (status, ledger, closed event log).
                return
            job.status = STATUS_RUNNING
            job.started_ts = time.time()
        bus = active_bus()
        with run_scope(job.id):
            if bus is not None:
                bus.publish(
                    CATEGORY_LIFECYCLE,
                    {"kind": "job", "phase": "running", "label": job.label},
                )
            result = None
            error: Optional[BaseException] = None
            record = None
            if self._remote is not None:
                entry, record = self._execute_remote(job)
            else:
                # The job's token becomes the thread-path run context,
                # so cancel() reaches every checkpoint of the flow.
                with run_context(RunContext(token=job.token)):
                    entry, result, error = run_source(
                        job.source,
                        job.label,
                        job.options,
                        self.library,
                        entity_name=job.entity,
                    )
                if result is not None:
                    job.artifacts = render_artifacts(job.label, result)
            if bus is not None:
                payload: Dict[str, object] = {
                    "kind": "job",
                    "phase": entry.status,
                    "label": job.label,
                    "elapsed_s": entry.elapsed_s,
                }
                if entry.design:
                    payload["design"] = entry.design
                if entry.status in ("failed", STATUS_CANCELLED) \
                        and entry.error:
                    payload["error"] = entry.error
                bus.publish(CATEGORY_LIFECYCLE, payload)
        if self.ledger is not None:
            try:
                if record is not None:
                    # Remote execution built the record worker-side;
                    # only the append happens here.
                    self.ledger.append(record)
                elif result is not None:
                    self.ledger.append(record_for_result(
                        result, job.source, job.label,
                        entry.elapsed_s, job.options,
                    ))
                elif entry.status == STATUS_CANCELLED:
                    self.ledger.append(record_for_cancelled(
                        job.id, job.source, job.label, entry.elapsed_s,
                        job.options, entry.error or "cancelled",
                    ))
                else:
                    self.ledger.append(record_for_failure(
                        job.id, job.source, job.label, entry.elapsed_s,
                        job.options,
                        error if error is not None
                        else RuntimeError(entry.error or "failed"),
                    ))
            except OSError:  # pragma: no cover - ledger on a full disk
                pass
        with self._lock:
            job.design = entry.design
            job.summary = entry.summary
            job.error = entry.error
            job.errors = list(entry.errors)
            job.warnings = list(entry.warnings)
            job.recovery = list(entry.recovery)
            job.elapsed_s = entry.elapsed_s
            job.finished_ts = time.time()
            job.status = entry.status
            self.done[entry.status] = self.done.get(entry.status, 0) + 1
        # Terminal status is visible before close(): an SSE handler
        # woken by close() always observes the final state.
        job.events.close()

    def _execute_remote(self, job: Job):
        """Run one job on the resident process pool.

        The worker gets a picklable payload (no live cache/bus/ledger;
        the shared cache travels as its disk directory) and sends back
        the entry, the rendered artifact strings and — when a ledger is
        configured — the ready-to-append record, so nothing that needs
        the live ``SynthesisResult`` runs on this side.  A crashed or
        timed-out worker surfaces as a FAILED entry, never a hang.
        """
        from concurrent.futures import CancelledError as FutureCancelled

        from repro.diagnostics import VaseError
        from repro.flow import transportable_options
        from repro.robust.batch import BatchEntry
        from repro.robust.lifecycle import CancelledError

        options = transportable_options(job.options)
        fanout = job.options.parallel
        if fanout != ParallelOptions():
            # Preserve the job's solver-exploration fan-out inside the
            # worker — downgraded to threads, since a spawned worker
            # must not spawn its own process pool.
            options = replace(options, parallel=ParallelOptions(
                executor="thread" if fanout.workers > 1 else "serial",
                workers=fanout.workers,
            ))
        shared = self.options.cache
        cache_dir = (
            str(shared.disk_dir)
            if shared is not None and shared.disk_dir is not None
            else None
        )
        future = self._remote.submit(
            _run_job_remote,
            job.source, job.label, job.entity, options,
            self.library, cache_dir, self.ledger is not None,
        )
        with self._lock:
            job.remote_future = future
        if job.cancel_requested:
            # cancel() raced ahead of the submission; relay it now so
            # the worker-side token still gets the request.
            future.cancel()
        try:
            outcome = future.result()
        except CancelledError as err:
            entry = BatchEntry(
                file=job.label, status=STATUS_CANCELLED, error=str(err),
            )
            return entry, None
        except FutureCancelled:
            entry = BatchEntry(
                file=job.label, status=STATUS_CANCELLED,
                error=job.token.reason or "cancelled",
            )
            return entry, None
        except VaseError as err:
            entry = BatchEntry(
                file=job.label, status="failed", error=str(err),
            )
            return entry, None
        finally:
            with self._lock:
                job.remote_future = None
        job.artifacts = outcome["artifacts"]
        return outcome["entry"], outcome["record"]

    # -- queries -------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"no job {job_id!r}")
        return job

    def jobs(self) -> List[Job]:
        """Every known job, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> Dict[str, object]:
        """The /metrics gauges: queue depth, running, done by outcome."""
        with self._lock:
            statuses = [job.status for job in self._jobs.values()]
            return {
                "queued": statuses.count(STATUS_QUEUED),
                "running": statuses.count(STATUS_RUNNING),
                "done": dict(self.done),
            }

    # -- lifecycle -----------------------------------------------------------

    def cancel(self, job_id: str, reason: str = "cancelled by request") -> Job:
        """Cancel one job; returns it with the cancel under way.

        A *queued* job is dequeued and finalized immediately (terminal
        ``cancelled`` status, ledger record, closed event log — its
        scheduled execution slot becomes a no-op).  A *running* job is
        cancelled cooperatively: its token is set, so the flow abandons
        work at the next checkpoint; under the ``process`` backend the
        request is additionally relayed to the worker over its pipe.
        A terminal job raises :class:`JobConflictError`.
        """
        job = self.get(job_id)
        with self._lock:
            if job.terminal:
                raise JobConflictError(
                    f"job {job.id} is already {job.status}"
                )
            job.cancel_requested = True
            was_queued = job.status == STATUS_QUEUED
            if was_queued:
                job.status = STATUS_CANCELLED
                job.error = reason
                job.finished_ts = time.time()
                self.done[STATUS_CANCELLED] = (
                    self.done.get(STATUS_CANCELLED, 0) + 1
                )
            remote = job.remote_future
        job.token.cancel(reason)
        if remote is not None:
            remote.cancel()
        if was_queued:
            self._finalize_cancelled_queued(job, reason)
        return job

    def _finalize_cancelled_queued(self, job: Job, reason: str) -> None:
        """Terminal bookkeeping of a job cancelled before it started."""
        bus = active_bus()
        if bus is not None:
            with run_scope(job.id):
                bus.publish(CATEGORY_LIFECYCLE, {
                    "kind": "job",
                    "phase": STATUS_CANCELLED,
                    "label": job.label,
                    "elapsed_s": 0.0,
                    "error": reason,
                })
        if self.ledger is not None:
            from repro.instrument.ledger import record_for_cancelled

            try:
                self.ledger.append(record_for_cancelled(
                    job.id, job.source, job.label, 0.0, job.options,
                    reason,
                ))
            except OSError:  # pragma: no cover - ledger on a full disk
                pass
        job.events.close()

    def drain(self, timeout_s: float = 30.0) -> Dict[str, int]:
        """Graceful shutdown: stop admission, finish, then cancel.

        Closes admission (further submits get
        :class:`QueueFullError`/503), cancels every still-queued job
        immediately, lets running jobs finish for up to ``timeout_s``
        seconds, cancels the stragglers cooperatively, and finally
        shuts the worker pools down.  Returns ``{"finished": ...,
        "cancelled": ...}`` for the operator log line.
        """
        with self._lock:
            self._closed = True
            snapshot = list(self._jobs.values())
        for job in snapshot:
            if job.status == STATUS_QUEUED:
                try:
                    self.cancel(
                        job.id, reason="server draining: job dequeued"
                    )
                except JobError:  # started or finished meanwhile
                    pass
        deadline = time.monotonic() + max(0.0, timeout_s)
        while time.monotonic() < deadline:
            if not any(
                job.status in (STATUS_QUEUED, STATUS_RUNNING)
                for job in snapshot
            ):
                break
            time.sleep(0.05)
        for job in snapshot:
            if job.status in (STATUS_QUEUED, STATUS_RUNNING):
                try:
                    self.cancel(
                        job.id,
                        reason="server draining: drain timeout expired",
                    )
                except JobError:
                    pass
        self.stop(wait=True)
        return {
            "finished": sum(
                1 for job in snapshot
                if job.status in ("ok", "degraded", "failed")
            ),
            "cancelled": sum(
                1 for job in snapshot
                if job.status == STATUS_CANCELLED
            ),
        }

    def stop(self, wait: bool = True) -> None:
        """Refuse new jobs and shut the worker pool(s) down."""
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)
        if self._remote is not None:
            self._remote.shutdown(wait=wait)
