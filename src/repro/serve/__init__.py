"""``vase serve``: the synthesis flow as a live observability service.

A stdlib-only HTTP layer over the existing machinery — the
:class:`~repro.serve.queue.JobManager` feeds submitted sources to the
pipeline's resident worker pool, every job's telemetry is routed off
the process bus into a per-job replay buffer, and the server exposes
job status, live SSE event streams, Prometheus metrics, and the run
ledger.  See ``serve/server.py`` for the endpoint map and
``serve/queue.py`` for the job model.
"""

from repro.serve.queue import (
    ALLOWED_OPTIONS,
    Job,
    JobConflictError,
    JobError,
    JobEventLog,
    JobManager,
    JobOptionsError,
    QueueFullError,
    UnknownJobError,
    build_job_options,
)
from repro.serve.server import VaseServer, create_server, render_server_metrics
from repro.serve.sse import (
    END_EVENT,
    SseMessage,
    format_comment,
    format_event,
    format_message,
    parse_sse,
)
from repro.serve.watch import open_stream, watch

__all__ = [
    "ALLOWED_OPTIONS",
    "END_EVENT",
    "Job",
    "JobConflictError",
    "JobError",
    "JobEventLog",
    "JobManager",
    "JobOptionsError",
    "QueueFullError",
    "SseMessage",
    "UnknownJobError",
    "VaseServer",
    "build_job_options",
    "create_server",
    "format_comment",
    "format_event",
    "format_message",
    "open_stream",
    "parse_sse",
    "render_server_metrics",
    "watch",
]
