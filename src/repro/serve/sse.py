"""Server-Sent Events framing and parsing (stdlib only).

``vase serve`` streams each job's :class:`TelemetryEvent`s as SSE
frames::

    id: <seq>
    event: <category>
    data: {"run_id": ..., "seq": ..., "ts": ..., "category": ..., "payload": ...}

The ``id`` field carries the event's dense per-run ``seq``, so a
reconnecting client can resume with ``Last-Event-ID`` (or ``?since=``)
and the server replays exactly the missing suffix — no gaps, no
duplicates.  Idle streams emit comment frames (``: heartbeat``) so
proxies and clients can tell a quiet job from a dead connection; the
stream ends with a ``event: end`` frame once the job is terminal and
every event has been delivered.

:func:`parse_sse` is the inverse, used by the ``vase watch`` client:
it folds a line iterator back into :class:`SseMessage` records per the
WHATWG dispatch rules (blank line dispatches, ``data:`` lines
accumulate, comments are surfaced separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

from repro.instrument.events import TelemetryEvent

#: event name of the stream-terminating frame
END_EVENT = "end"


def format_event(event: TelemetryEvent) -> bytes:
    """One telemetry event as an SSE frame (id = seq, event = category)."""
    return (
        f"id: {event.seq}\n"
        f"event: {event.category}\n"
        f"data: {event.to_json()}\n\n"
    ).encode("utf-8")


def format_message(
    data: str, event: Optional[str] = None, event_id: Optional[str] = None
) -> bytes:
    """A generic SSE frame (the ``end`` frame, error notices)."""
    lines: List[str] = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    if event is not None:
        lines.append(f"event: {event}")
    for chunk in data.split("\n"):
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def format_comment(text: str) -> bytes:
    """A comment frame (heartbeats; ignored by SSE clients)."""
    return f": {text}\n\n".encode("utf-8")


@dataclass
class SseMessage:
    """One dispatched SSE message (or comment) on the client side."""

    data: str = ""
    event: Optional[str] = None
    id: Optional[str] = None
    #: comment lines seen since the previous dispatch (heartbeats)
    comments: List[str] = field(default_factory=list)

    @property
    def is_comment(self) -> bool:
        return not self.data and self.event is None and self.id is None


def parse_sse(lines: Iterable[str]) -> Iterator[SseMessage]:
    """Fold decoded text lines into dispatched :class:`SseMessage`s.

    Follows the WHATWG EventSource dispatch rules closely enough for
    our own frames: ``data:`` lines accumulate (joined by newlines),
    a blank line dispatches, ``:`` lines are comments.  A trailing
    unterminated message is discarded, comments pending at a dispatch
    ride on the dispatched message.
    """
    data: List[str] = []
    event: Optional[str] = None
    event_id: Optional[str] = None
    comments: List[str] = []
    for raw in lines:
        line = raw.rstrip("\n").rstrip("\r")
        if not line:
            if data or event is not None or event_id is not None or comments:
                yield SseMessage(
                    data="\n".join(data),
                    event=event,
                    id=event_id,
                    comments=comments,
                )
            data, event, event_id, comments = [], None, None, []
            continue
        if line.startswith(":"):
            comments.append(line[1:].lstrip())
            continue
        name, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if name == "data":
            data.append(value)
        elif name == "event":
            event = value
        elif name == "id":
            event_id = value
        # unknown field names are ignored, per the spec
