"""``vase watch``: tail a served job's telemetry stream in a terminal.

The client half of the SSE endpoint: connect to
``http://host:port/jobs/<id>/events`` (or just the job status URL —
``/events`` is appended when missing), parse the stream with
:func:`~repro.serve.sse.parse_sse`, rebuild each frame into a
:class:`~repro.instrument.events.TelemetryEvent`, and render it with
the same :class:`~repro.instrument.events.ProgressRenderer` the local
``vase batch --progress`` uses — plus one line per job/run lifecycle
phase, so a watcher sees ``queued`` → ``running`` → terminal status
exactly as the server does.

Exit code mirrors the job: ``0`` for ``ok``/``degraded``, ``1`` for
``failed`` (or when the stream ends without a terminal status).
"""

from __future__ import annotations

import json
from typing import IO, Optional
from urllib.request import Request, urlopen

from repro.instrument.events import (
    CATEGORY_LIFECYCLE,
    ProgressRenderer,
    TelemetryEvent,
)
from repro.serve.sse import END_EVENT, parse_sse

#: job statuses that map to exit code 0
_GOOD_STATUSES = ("ok", "degraded")


def _event_url(url: str) -> str:
    """Normalize a job URL to its SSE endpoint."""
    trimmed = url.rstrip("/")
    if not trimmed.endswith("/events"):
        trimmed += "/events"
    return trimmed


def event_from_frame(data: str) -> Optional[TelemetryEvent]:
    """Rebuild a TelemetryEvent from an SSE data payload (or None)."""
    try:
        record = json.loads(data)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict):
        return None
    try:
        return TelemetryEvent(
            run_id=str(record["run_id"]),
            seq=int(record["seq"]),
            ts=float(record["ts"]),
            category=str(record["category"]),
            payload=dict(record.get("payload") or {}),
        )
    except (KeyError, TypeError, ValueError):
        return None


def watch(
    url: str,
    stream: Optional[IO[str]] = None,
    since: int = -1,
    verbose: bool = False,
) -> int:
    """Tail one job's SSE stream until its ``end`` frame.

    ``since`` resumes mid-stream (the server replays seq ``since+1``
    onward); ``verbose`` prints every event as JSON instead of the
    progress rendering.
    """
    import sys

    out = stream if stream is not None else sys.stderr
    renderer = ProgressRenderer(stream=out)
    final_status: Optional[str] = None
    request = Request(
        _event_url(url) + (f"?since={since}" if since >= 0 else ""),
        headers={"Accept": "text/event-stream"},
    )
    with urlopen(request) as response:
        lines = (raw.decode("utf-8") for raw in response)
        for message in parse_sse(lines):
            if message.is_comment:
                continue
            if message.event == END_EVENT:
                try:
                    final_status = json.loads(message.data).get("status")
                except (json.JSONDecodeError, AttributeError):
                    final_status = None
                break
            event = event_from_frame(message.data)
            if event is None:
                continue
            if verbose:
                out.write(event.to_json() + "\n")
                out.flush()
                continue
            renderer(event)
            _render_job_line(event, out)
    if final_status is not None:
        out.write(f"job finished: {final_status}\n")
        out.flush()
    return 0 if final_status in _GOOD_STATUSES else 1


def _render_job_line(event: TelemetryEvent, out: IO[str]) -> None:
    """One line per job/run lifecycle phase (the renderer only shows
    per-file phases)."""
    if event.category != CATEGORY_LIFECYCLE:
        return
    payload = event.payload
    kind = payload.get("kind")
    if kind not in ("job", "run"):
        return
    phase = payload.get("phase", "?")
    line = f"{kind} {event.run_id}: {phase}"
    if payload.get("design"):
        line += f" ({payload['design']})"
    if payload.get("error"):
        line += f": {payload['error']}"
    out.write(line + "\n")
    out.flush()
