"""``vase watch``: tail a served job's telemetry stream in a terminal.

The client half of the SSE endpoint: connect to
``http://host:port/jobs/<id>/events`` (or just the job status URL —
``/events`` is appended when missing), parse the stream with
:func:`~repro.serve.sse.parse_sse`, rebuild each frame into a
:class:`~repro.instrument.events.TelemetryEvent`, and render it with
the same :class:`~repro.instrument.events.ProgressRenderer` the local
``vase batch --progress`` uses — plus one line per job/run lifecycle
phase, so a watcher sees ``queued`` → ``running`` → terminal status
exactly as the server does.

A dropped connection does not lose the watch: the client reconnects
with bounded exponential backoff, resuming exactly where it left off
via the ``Last-Event-ID`` header (the server replays seq ``last+1``
onward, so no frame is duplicated or skipped).  Any successfully
received event resets the retry budget; ``max_retries`` *consecutive*
failures give up.

Exit code mirrors the job: ``0`` for ``ok``/``degraded``, ``1`` for
``failed``/``cancelled`` (or when the watch gives up without seeing a
terminal status).
"""

from __future__ import annotations

import json
import time
from typing import IO, Callable, Optional
from urllib.request import Request, urlopen

from repro.instrument.events import (
    CATEGORY_LIFECYCLE,
    ProgressRenderer,
    TelemetryEvent,
)
from repro.serve.sse import END_EVENT, parse_sse

#: job statuses that map to exit code 0
_GOOD_STATUSES = ("ok", "degraded")

#: ceiling on the reconnect backoff, seconds
_MAX_BACKOFF_S = 15.0


def _event_url(url: str) -> str:
    """Normalize a job URL to its SSE endpoint."""
    trimmed = url.rstrip("/")
    if not trimmed.endswith("/events"):
        trimmed += "/events"
    return trimmed


def open_stream(url: str, since: int, token: Optional[str] = None):
    """One SSE connection, resuming after seq ``since``.

    The resume position travels as the standard ``Last-Event-ID``
    header (the query parameter is kept for first connections so the
    URL stays copy-pasteable).  Returns the open response object.
    """
    headers = {"Accept": "text/event-stream"}
    if since >= 0:
        headers["Last-Event-ID"] = str(since)
    if token:
        headers["Authorization"] = f"Bearer {token}"
    request = Request(
        _event_url(url) + (f"?since={since}" if since >= 0 else ""),
        headers=headers,
    )
    return urlopen(request)


def event_from_frame(data: str) -> Optional[TelemetryEvent]:
    """Rebuild a TelemetryEvent from an SSE data payload (or None)."""
    try:
        record = json.loads(data)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict):
        return None
    try:
        return TelemetryEvent(
            run_id=str(record["run_id"]),
            seq=int(record["seq"]),
            ts=float(record["ts"]),
            category=str(record["category"]),
            payload=dict(record.get("payload") or {}),
        )
    except (KeyError, TypeError, ValueError):
        return None


def watch(
    url: str,
    stream: Optional[IO[str]] = None,
    since: int = -1,
    verbose: bool = False,
    token: Optional[str] = None,
    max_retries: int = 5,
    retry_backoff_s: float = 0.5,
    opener: Optional[Callable] = None,
) -> int:
    """Tail one job's SSE stream until its ``end`` frame.

    ``since`` resumes mid-stream (the server replays seq ``since+1``
    onward); ``verbose`` prints every event as JSON instead of the
    progress rendering; ``token`` is sent as a bearer credential for
    token-protected servers.  Connection failures and mid-stream drops
    are retried up to ``max_retries`` consecutive times with bounded
    exponential backoff, resuming from the last seq actually rendered.
    ``opener`` overrides the connection factory
    (:func:`open_stream`'s ``(url, since, token)`` signature) — tests
    inject fake streams through it.
    """
    import sys

    out = stream if stream is not None else sys.stderr
    open_fn = opener if opener is not None else open_stream
    renderer = ProgressRenderer(stream=out)
    final_status: Optional[str] = None
    last = since
    failures = 0
    while final_status is None:
        try:
            response = open_fn(url, last, token)
        except OSError as err:
            failures += 1
            if failures > max_retries:
                out.write(
                    f"watch: giving up after {max_retries} "
                    f"consecutive connection failures: {err}\n"
                )
                out.flush()
                break
            delay = min(
                retry_backoff_s * 2.0 ** (failures - 1), _MAX_BACKOFF_S
            )
            out.write(
                f"watch: connection failed ({err}); retrying in "
                f"{delay:.1f} s ({failures}/{max_retries})\n"
            )
            out.flush()
            time.sleep(delay)
            continue
        try:
            lines = (raw.decode("utf-8") for raw in response)
            for message in parse_sse(lines):
                if message.is_comment:
                    continue
                if message.event == END_EVENT:
                    try:
                        final_status = json.loads(
                            message.data
                        ).get("status")
                    except (json.JSONDecodeError, AttributeError):
                        final_status = None
                    break
                event = event_from_frame(message.data)
                if event is None:
                    continue
                failures = 0  # live data: reset the retry budget
                last = max(last, event.seq)
                if verbose:
                    out.write(event.to_json() + "\n")
                    out.flush()
                    continue
                renderer(event)
                _render_job_line(event, out)
        except OSError:
            pass  # dropped mid-stream: fall through to the retry path
        finally:
            try:
                response.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        if final_status is None:
            # The stream ended (or dropped) without an end frame.
            failures += 1
            if failures > max_retries:
                out.write(
                    f"watch: stream ended without a terminal status "
                    f"after {max_retries} reconnect attempts\n"
                )
                out.flush()
                break
            delay = min(
                retry_backoff_s * 2.0 ** (failures - 1), _MAX_BACKOFF_S
            )
            out.write(
                f"watch: stream interrupted; reconnecting from seq "
                f"{last} in {delay:.1f} s ({failures}/{max_retries})\n"
            )
            out.flush()
            time.sleep(delay)
    if final_status is not None:
        out.write(f"job finished: {final_status}\n")
        out.flush()
    return 0 if final_status in _GOOD_STATUSES else 1


def _render_job_line(event: TelemetryEvent, out: IO[str]) -> None:
    """One line per job/run lifecycle phase (the renderer only shows
    per-file phases)."""
    if event.category != CATEGORY_LIFECYCLE:
        return
    payload = event.payload
    kind = payload.get("kind")
    if kind not in ("job", "run"):
        return
    phase = payload.get("phase", "?")
    line = f"{kind} {event.run_id}: {phase}"
    if payload.get("design"):
        line += f" ({payload['design']})"
    if payload.get("error"):
        line += f": {payload['error']}"
    out.write(line + "\n")
    out.flush()
