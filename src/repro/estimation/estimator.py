"""Netlist-level performance estimation.

Substitute for the estimation tools the mapper calls on every complete
mapping [17][4]: for each component instance the estimator derives the
specification its op amps must meet (closed-loop gain scales the
required unity-gain frequency; the application's signal amplitude and
bandwidth set the slew rate), sizes a two-stage op amp for it, and rolls
areas/powers up into a :class:`PerformanceEstimate`.

Passive area (resistors, capacitors) and a fixed overhead per switch /
mux are included so that zero-op-amp components still cost area.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.estimation.constraints import ConstraintSet, PerformanceEstimate
from repro.estimation.opamp import OpAmpSpec, design_two_stage, min_opamp_area
from repro.estimation.technology import MOSIS_SCN20, Technology
from repro.instrument import metrics

if TYPE_CHECKING:  # imported lazily to avoid an estimation <-> synth cycle
    from repro.synth.netlist import ComponentInstance, Netlist

#: nominal resistor value assumed for gain networks, ohms
_NOMINAL_RESISTOR = 20.0e3
#: area of a transmission-gate switch (two minimum devices + routing)
_SWITCH_AREA = 40.0e-12  # 40 um^2 in m^2
#: digital overhead of an ADC (SAR logic), m^2
_ADC_LOGIC_AREA = 0.15e-6


class Estimator:
    """Performance estimation tool bound to one technology."""

    def __init__(
        self,
        technology: Technology = MOSIS_SCN20,
        constraints: Optional[ConstraintSet] = None,
    ):
        self.technology = technology
        self.constraints = constraints or ConstraintSet()
        self._cache: Dict[Tuple[float, float, float], object] = {}

    # -- op amp sizing ----------------------------------------------------------

    def _base_spec(self) -> OpAmpSpec:
        c = self.constraints
        # Slew to reproduce the full signal amplitude at the band edge:
        # SR >= 2*pi*f*A (sine-wave criterion).
        slew = 2.0 * math.pi * c.signal_bandwidth_hz * c.signal_amplitude
        ugf = 10.0 * c.signal_bandwidth_hz  # loop-gain margin at band edge
        if c.min_ugf_hz is not None:
            ugf = max(ugf, c.min_ugf_hz)
        if c.min_slew_rate is not None:
            slew = max(slew, c.min_slew_rate)
        return OpAmpSpec(
            ugf_hz=ugf,
            slew_rate=slew,
            cload=c.load_capacitance,
            swing=c.signal_amplitude,
        )

    def _sized_opamp(self, spec: OpAmpSpec):
        key = (spec.ugf_hz, spec.slew_rate, spec.cload)
        design = self._cache.get(key)
        if design is None:
            metrics().inc("estimator.opamp_sizings")
            design = design_two_stage(spec, self.technology)
            self._cache[key] = design
        return design

    # -- per-instance estimation ----------------------------------------------------

    def estimate_instance(self, instance: ComponentInstance) -> PerformanceEstimate:
        """Area/power/speed estimate of one component instance."""
        metrics().inc("estimator.instance_estimates")
        tech = self.technology
        estimate = PerformanceEstimate()
        gain = instance.spec.required_gain(instance.params)
        base = self._base_spec()

        n_opamps = instance.spec.opamps
        if n_opamps > 0:
            if instance.spec.name == "inverting_cascade":
                # The cascade splits the gain: each stage needs only
                # sqrt(gain) times the base UGF — the transformation's
                # bandwidth benefit.
                stage_spec = base.scaled(math.sqrt(max(gain, 1.0)))
                designs = [self._sized_opamp(stage_spec)] * n_opamps
            else:
                spec = base.scaled(gain)
                designs = [self._sized_opamp(spec)] * n_opamps
            for design in designs:
                estimate.area += design.area
                estimate.power += design.power
                estimate.min_ugf_hz = min(estimate.min_ugf_hz, design.ugf_hz)
                estimate.min_slew_rate = min(
                    estimate.min_slew_rate, design.slew_rate
                )
                if not design.feasible:
                    estimate.feasible = False
                    estimate.notes.extend(
                        f"{instance.name}: {note}" for note in design.notes
                    )
            estimate.opamps = n_opamps

        # Passive network area.
        estimate.area += instance.spec.passives * tech.resistor_area(
            _NOMINAL_RESISTOR
        )
        if instance.spec.name in ("integrator", "summing_integrator",
                                  "differentiator", "sample_hold"):
            estimate.area += tech.capacitor_area(20.0e-12)
        if instance.spec.name in ("analog_switch", "analog_mux"):
            ways = int(instance.params.get("ways", 2))
            estimate.area += _SWITCH_AREA * max(ways, 1)
        if instance.spec.name == "adc":
            estimate.area += _ADC_LOGIC_AREA
        return estimate

    # -- netlist roll-up ---------------------------------------------------------------

    def estimate(self, netlist: Netlist) -> PerformanceEstimate:
        """Estimate a complete mapping (the paper's • step)."""
        metrics().inc("estimator.netlist_estimates")
        total = PerformanceEstimate()
        for instance in netlist.instances:
            one = self.estimate_instance(instance)
            total.area += one.area
            total.power += one.power
            total.opamps += one.opamps
            total.min_ugf_hz = min(total.min_ugf_hz, one.min_ugf_hz)
            total.min_slew_rate = min(total.min_slew_rate, one.min_slew_rate)
            if not one.feasible:
                total.feasible = False
                total.notes.extend(one.notes)
        return total

    def min_area(self) -> float:
        """MinArea of the bounding rule: a minimum-size op amp's area."""
        return min_opamp_area(self.technology)

    def min_area_per_opamp(self, library) -> float:
        """Tightest valid per-op-amp area lower bound for ``library``.

        Every op amp in a mapping belongs to some component instance, so
        the total area is at least ``opamps * min_spec(area/opamps)``.
        This refines the paper's raw ``MinArea`` with the fact that a
        library circuit always carries its passive network too.
        """
        from repro.synth.netlist import ComponentInstance

        best = float("inf")
        for spec in library.specs():
            if spec.opamps <= 0:
                continue
            dummy = ComponentInstance(name="_bound", spec=spec, params={})
            estimate = self.estimate_instance(dummy)
            best = min(best, estimate.area / spec.opamps)
        if best == float("inf"):
            best = min_opamp_area(self.technology)
        return best

    def satisfies(self, estimate: PerformanceEstimate) -> bool:
        return self.constraints.satisfied_by(estimate)
