"""Analog performance estimation (substitute for [17] and [4])."""

from repro.estimation.constraints import (
    ConstraintSet,
    ConstraintViolation,
    PerformanceEstimate,
)
from repro.estimation.estimator import Estimator
from repro.estimation.montecarlo import (
    MismatchTrial,
    YieldReport,
    mismatch_analysis,
)
from repro.estimation.opamp import (
    OpAmpDesign,
    OpAmpSpec,
    design_two_stage,
    min_opamp_area,
)
from repro.estimation.technology import MOSIS_SCN20, Technology

__all__ = [
    "ConstraintSet",
    "ConstraintViolation",
    "Estimator",
    "MismatchTrial",
    "YieldReport",
    "mismatch_analysis",
    "MOSIS_SCN20",
    "OpAmpDesign",
    "OpAmpSpec",
    "PerformanceEstimate",
    "Technology",
    "design_two_stage",
    "min_opamp_area",
]
