"""Performance constraints for architecture synthesis.

The mapper searches for the net-list "that satisfies all imposed
performance constraints, and minimizes the overall ASIC area".  A
:class:`ConstraintSet` carries the imposed limits; the estimator checks
an estimate against them and reports each violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class PerformanceEstimate:
    """Roll-up of the estimated attributes of a complete mapping."""

    area: float = 0.0  # m^2
    power: float = 0.0  # W
    min_ugf_hz: float = float("inf")  # slowest op amp's UGF
    min_slew_rate: float = float("inf")  # V/s
    opamps: int = 0
    feasible: bool = True
    notes: List[str] = field(default_factory=list)

    @property
    def area_um2(self) -> float:
        return self.area * 1e12

    @property
    def area_mm2(self) -> float:
        return self.area * 1e6

    def describe(self) -> str:
        status = "feasible" if self.feasible else "INFEASIBLE"
        return (
            f"{status}: area={self.area_um2:,.0f} um^2, "
            f"power={self.power * 1e3:.2f} mW, {self.opamps} op amps"
        )


@dataclass(frozen=True)
class ConstraintViolation:
    """One violated constraint: a stable name plus a human message.

    The ``name`` identifies *which* constraint failed (``sizing``,
    ``max_area``, ``max_power``, ``min_ugf``, ``min_slew_rate``,
    ``max_opamps``) so the mapper can tally failures per constraint
    across an exploration; the ``message`` carries the values.
    """

    name: str
    message: str

    def __str__(self) -> str:
        return self.message


@dataclass
class ConstraintSet:
    """Limits a synthesized architecture must respect."""

    #: maximum total area, m^2 (None = unconstrained)
    max_area: Optional[float] = None
    #: maximum total power, W
    max_power: Optional[float] = None
    #: minimum unity-gain frequency every op amp must reach, Hz
    min_ugf_hz: Optional[float] = None
    #: minimum slew rate, V/s
    min_slew_rate: Optional[float] = None
    #: maximum number of op amps
    max_opamps: Optional[int] = None
    #: signal bandwidth of the application, Hz (drives op amp UGF specs)
    signal_bandwidth_hz: float = 20.0e3
    #: per-op-amp load capacitance assumption, F
    load_capacitance: float = 10.0e-12
    #: required slew rate derived from max signal amplitude * bandwidth
    signal_amplitude: float = 1.5

    def check_detailed(
        self, estimate: PerformanceEstimate
    ) -> List[ConstraintViolation]:
        """Named constraint violations (empty when satisfied)."""
        violations: List[ConstraintViolation] = []
        if not estimate.feasible:
            violations.append(ConstraintViolation(
                "sizing",
                "infeasible op-amp sizing: " + "; ".join(estimate.notes)
                if estimate.notes else "infeasible sizing",
            ))
        if self.max_area is not None and estimate.area > self.max_area:
            violations.append(ConstraintViolation(
                "max_area",
                f"area {estimate.area_um2:,.0f} um^2 exceeds "
                f"{self.max_area * 1e12:,.0f} um^2",
            ))
        if self.max_power is not None and estimate.power > self.max_power:
            violations.append(ConstraintViolation(
                "max_power",
                f"power {estimate.power*1e3:.2f} mW exceeds "
                f"{self.max_power*1e3:.2f} mW",
            ))
        if (
            self.min_ugf_hz is not None
            and estimate.min_ugf_hz < self.min_ugf_hz
        ):
            violations.append(ConstraintViolation(
                "min_ugf",
                f"UGF {estimate.min_ugf_hz/1e6:.2f} MHz below "
                f"{self.min_ugf_hz/1e6:.2f} MHz",
            ))
        if (
            self.min_slew_rate is not None
            and estimate.min_slew_rate < self.min_slew_rate
        ):
            violations.append(ConstraintViolation(
                "min_slew_rate",
                f"slew rate {estimate.min_slew_rate/1e6:.2f} V/us below "
                f"{self.min_slew_rate/1e6:.2f} V/us",
            ))
        if self.max_opamps is not None and estimate.opamps > self.max_opamps:
            violations.append(ConstraintViolation(
                "max_opamps",
                f"{estimate.opamps} op amps exceed limit {self.max_opamps}",
            ))
        return violations

    def check(self, estimate: PerformanceEstimate) -> List[str]:
        """Constraint violations of ``estimate`` (empty when satisfied)."""
        return [v.message for v in self.check_detailed(estimate)]

    def satisfied_by(self, estimate: PerformanceEstimate) -> bool:
        return not self.check(estimate)
