"""Two-stage operational amplifier sizing by square-law design equations.

Substitute for the paper's analog performance estimation tools [17][4]:
"they calculate approximate performance attributes (UGF, slew rate,
power) and hardware area by instantiating op amps with precise circuit
topologies and sizing their transistors."

The procedure is the classic two-stage Miller-compensated op-amp design
flow (Allen & Holberg style):

1. ``Cc = 0.22 CL``  (60° phase margin rule of thumb);
2. ``I5 = SR * Cc``  (tail current from the slew-rate requirement);
3. ``gm1 = 2π · UGF · Cc`` and ``(W/L)1 = gm1² / (k'n · I5)``;
4. second-stage ``gm6 = 10 · gm1`` (RHP-zero / phase-margin margin),
   ``I6`` from square law;
5. DC gain check ``Av = gm1·gm6 / (I5/2·(λn+λp) · I6·(λn+λp))``;
6. area: Σ W·L of the eight transistors + the compensation capacitor,
   times a layout-overhead factor.

The resulting :class:`OpAmpDesign` reports achieved UGF, slew rate,
power and area; requirements that exceed what the process supports are
reported as infeasible rather than silently met.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.estimation.technology import MOSIS_SCN20, Technology


@dataclass(frozen=True)
class OpAmpSpec:
    """Requirements placed on one op amp by its surrounding circuit."""

    #: required unity-gain frequency, Hz
    ugf_hz: float = 1.0e6
    #: required slew rate, V/s
    slew_rate: float = 2.0e6
    #: load capacitance, F
    cload: float = 10.0e-12
    #: required DC gain, V/V
    dc_gain: float = 5000.0
    #: required output swing, V (single-sided)
    swing: float = 1.5

    def scaled(self, gain: float) -> "OpAmpSpec":
        """Spec with UGF scaled by a closed-loop gain (GBW conservation)."""
        return OpAmpSpec(
            ugf_hz=self.ugf_hz * max(gain, 1.0),
            slew_rate=self.slew_rate,
            cload=self.cload,
            dc_gain=self.dc_gain,
            swing=self.swing,
        )


@dataclass
class OpAmpDesign:
    """A sized two-stage op amp and its achieved performance."""

    spec: OpAmpSpec
    technology: Technology
    feasible: bool
    #: compensation capacitor, F
    cc: float = 0.0
    #: first-stage tail current / second-stage current, A
    i5: float = 0.0
    i6: float = 0.0
    #: input pair and driver transconductances, S
    gm1: float = 0.0
    gm6: float = 0.0
    #: W/L ratios keyed by device name (M1..M8)
    ratios: Dict[str, float] = field(default_factory=dict)
    #: achieved values
    ugf_hz: float = 0.0
    slew_rate: float = 0.0
    dc_gain: float = 0.0
    power: float = 0.0
    #: total layout area, m^2
    area: float = 0.0
    notes: List[str] = field(default_factory=list)

    @property
    def area_um2(self) -> float:
        return self.area * 1e12


#: Minimum-size op amp area (m^2): the MinArea of the bounding rule.
def min_opamp_area(tech: Technology = MOSIS_SCN20) -> float:
    """Area of an op amp with all transistors at minimum dimensions."""
    # Eight minimum transistors + the smallest practical Miller cap (1 pF).
    active = 8 * tech.min_width * tech.min_length
    return (active * tech.layout_overhead) + tech.capacitor_area(1.0e-12)


def design_two_stage(
    spec: OpAmpSpec, tech: Technology = MOSIS_SCN20
) -> OpAmpDesign:
    """Size a two-stage Miller op amp for ``spec`` (see module docs)."""
    design = OpAmpDesign(spec=spec, technology=tech, feasible=True)
    min_ratio = tech.min_width / tech.min_length

    # 1. Compensation capacitor from the phase-margin rule of thumb.
    cc = max(0.22 * spec.cload, 1.0e-12)
    design.cc = cc

    # 2. Tail current from the slew-rate requirement.
    i5 = max(spec.slew_rate * cc, 1.0e-6)
    design.i5 = i5

    def size_from_gm1(gm1: float):
        """Downstream sizing given the input-pair transconductance."""
        ratio1 = max(gm1 * gm1 / (tech.kp_n * i5), min_ratio)
        gm6 = 10.0 * gm1  # keeps the RHP zero beyond 10x UGF
        ratio6 = max(gm6 * gm6 / (tech.kp_p * 10.0 * i5), min_ratio)
        i6 = gm6 * gm6 / (2.0 * tech.kp_p * ratio6)
        gds2 = (i5 / 2.0) * (tech.lambda_n + tech.lambda_p)
        gds6 = i6 * (tech.lambda_n + tech.lambda_p)
        av = (gm1 / max(gds2, 1e-15)) * (gm6 / max(gds6, 1e-15))
        return ratio1, gm6, ratio6, i6, av

    # 3. Input pair from the UGF requirement; when the DC gain falls
    #    short, raise gm1 (Av scales with gm1^2 at fixed bias) — the
    #    standard low-overdrive re-sizing step.
    gm1 = 2.0 * math.pi * spec.ugf_hz * cc
    ratio1, gm6, ratio6, i6, av = size_from_gm1(gm1)
    for _ in range(8):
        if av >= spec.dc_gain:
            break
        gm1 *= math.sqrt(spec.dc_gain / max(av, 1.0)) * 1.05
        ratio1, gm6, ratio6, i6, av = size_from_gm1(gm1)
    # Keep device aspect ratios practical by raising the bias current
    # beyond the slew minimum when a fast stage would otherwise need an
    # enormous W/L (the standard overdrive/current trade).
    ratio_target = 2000.0
    if ratio6 > ratio_target or ratio1 > ratio_target:
        worst = max(ratio6, ratio1)
        i5 *= worst / ratio_target
        design.i5 = i5
        ratio1, gm6, ratio6, i6, av = size_from_gm1(gm1)
        for _ in range(4):
            if av >= spec.dc_gain:
                break
            gm1 *= math.sqrt(spec.dc_gain / max(av, 1.0)) * 1.05
            ratio1, gm6, ratio6, i6, av = size_from_gm1(gm1)
    design.gm1 = gm1
    design.gm6 = gm6
    design.i6 = i6

    # 4. Mirror / bias devices at moderate ratios from the currents.
    ratio3 = max(i5 / (tech.kp_p * 0.25), min_ratio)
    ratio5 = max(i5 / (tech.kp_n * 0.25), min_ratio)
    ratio7 = max(i6 / (tech.kp_n * 0.25), min_ratio)
    design.ratios = {
        "M1": ratio1,
        "M2": ratio1,
        "M3": ratio3,
        "M4": ratio3,
        "M5": ratio5,
        "M6": ratio6,
        "M7": ratio7,
        "M8": ratio5,
    }

    # 5. Achieved small-signal figures.
    design.dc_gain = av
    design.ugf_hz = gm1 / (2.0 * math.pi * cc)
    design.slew_rate = i5 / cc
    design.power = (i5 + i6 + 0.1 * i5) * (tech.vdd - tech.vss)

    # 6. Area: W·L per device (L = min length; W = ratio · L) + Cc.
    active = 0.0
    length = tech.min_length
    for ratio in design.ratios.values():
        width = max(ratio * length, tech.min_width)
        active += width * length
    design.area = active * tech.layout_overhead + tech.capacitor_area(cc)

    # Feasibility screens: swing, gain, and sane device sizes.
    if design.dc_gain < spec.dc_gain:
        design.feasible = False
        design.notes.append(
            f"DC gain {design.dc_gain:.0f} below required {spec.dc_gain:.0f}"
        )
    if spec.swing > (tech.vdd - 1.0):
        design.feasible = False
        design.notes.append(
            f"required swing {spec.swing:.2f} V exceeds supply headroom"
        )
    if ratio1 > 5000.0 or ratio6 > 5000.0:
        design.feasible = False
        design.notes.append("device aspect ratios beyond practical limits")
    if spec.ugf_hz > 50.0e6:
        design.feasible = False
        design.notes.append(
            f"UGF {spec.ugf_hz/1e6:.1f} MHz beyond the 2 µm process"
        )
    return design
