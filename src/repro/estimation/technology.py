"""Process technology description (MOSIS SCN-2.0 µm flavor).

Substitute for the fabrication data behind the paper's estimation tools
[17][4].  Values are representative of a 2 µm double-poly double-metal
CMOS process (the paper's receiver experiment uses MOSIS SCN-2.0um);
they only need to be *plausible and monotone* — the synthesis flow uses
them to rank mappings, not to tape out.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """CMOS process constants used by the square-law sizing equations."""

    name: str = "SCN20"
    #: feature size (minimum drawn channel length), meters
    feature_size: float = 2.0e-6
    #: supply voltage, volts
    vdd: float = 5.0
    vss: float = -5.0
    #: NMOS / PMOS transconductance parameters k' = µCox, A/V^2
    kp_n: float = 50.0e-6
    kp_p: float = 17.0e-6
    #: threshold voltages, volts
    vt_n: float = 0.75
    vt_p: float = -0.85
    #: channel-length modulation, 1/V
    lambda_n: float = 0.04
    lambda_p: float = 0.05
    #: gate-oxide capacitance per area, F/m^2
    cox: float = 0.9e-3
    #: poly-poly capacitor density, F/m^2
    cap_density: float = 0.5e-3
    #: poly resistor sheet density: area per ohm, m^2/ohm
    #: (~25 ohm/sq poly drawn 2 um wide incl. spacing)
    res_area_per_ohm: float = 1.6e-13
    #: routing/well overhead multiplier on active area
    layout_overhead: float = 2.5

    @property
    def min_length(self) -> float:
        return self.feature_size

    @property
    def min_width(self) -> float:
        return 1.5 * self.feature_size

    def capacitor_area(self, capacitance: float) -> float:
        """Layout area (m^2) of a poly-poly capacitor."""
        return capacitance / self.cap_density

    def resistor_area(self, resistance: float) -> float:
        """Layout area (m^2) of a poly resistor."""
        return resistance * self.res_area_per_ohm


#: The default process used throughout the reproduction.
MOSIS_SCN20 = Technology()
