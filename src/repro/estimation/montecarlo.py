"""Monte-Carlo mismatch analysis of synthesized architectures.

Component values in an analog ASIC deviate from nominal (resistor-ratio
mismatch, capacitor tolerance).  This pass estimates how a synthesized
net-list's *function* degrades under such mismatch: each trial perturbs
every gain-setting parameter of every instance by a relative Gaussian
error, re-simulates the behavioral model, and scores the output against
the nominal response.  The resulting yield figure (trials within an
error budget) lets design-space exploration trade area against matching
requirements — a natural companion to the paper's estimation tools.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.vhif.design import VhifDesign
from repro.vhif.interp import Interpreter
from repro.vhif.sfg import BlockKind

if TYPE_CHECKING:  # avoid an estimation <-> flow import cycle
    from repro.flow import SynthesisResult

Stimulus = Callable[[float], float]

#: block parameters subject to mismatch, per kind
_PERTURBABLE: Dict[BlockKind, List[str]] = {
    BlockKind.SCALE: ["gain"],
    BlockKind.INTEGRATE: ["gain"],
    BlockKind.CONST: ["value"],
    BlockKind.LIMIT: ["low", "high"],
    BlockKind.COMPARATOR: ["threshold"],
}


@dataclass
class MismatchTrial:
    """One Monte-Carlo sample."""

    index: int
    rms_error: float
    max_error: float
    passed: bool


@dataclass
class YieldReport:
    """Aggregate result of a mismatch run."""

    trials: List[MismatchTrial] = field(default_factory=list)
    tolerance: float = 0.0
    error_budget: float = 0.0

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def yield_fraction(self) -> float:
        if not self.trials:
            return 0.0
        return sum(1 for t in self.trials if t.passed) / len(self.trials)

    @property
    def mean_rms_error(self) -> float:
        if not self.trials:
            return 0.0
        return float(np.mean([t.rms_error for t in self.trials]))

    @property
    def worst_rms_error(self) -> float:
        if not self.trials:
            return 0.0
        return float(np.max([t.rms_error for t in self.trials]))

    def describe(self) -> str:
        return (
            f"yield {self.yield_fraction*100:.0f} % over {self.n_trials} "
            f"trials at {self.tolerance*100:.1f} % component mismatch "
            f"(mean rms error {self.mean_rms_error*1e3:.2f} mV, worst "
            f"{self.worst_rms_error*1e3:.2f} mV, budget "
            f"{self.error_budget*1e3:.1f} mV)"
        )


def _perturbed_design(
    design: VhifDesign, tolerance: float, rng: random.Random
) -> VhifDesign:
    """A copy of the design with gain parameters Gaussian-perturbed."""
    clone = VhifDesign(design.name)
    for sfg in design.sfgs:
        clone.add_sfg(sfg.copy())
    clone.fsms = design.fsms  # FSMs are digital: no mismatch
    clone.ports = design.ports
    clone.event_sources = dict(design.event_sources)
    clone.quantity_taps = dict(design.quantity_taps)
    clone.constants = dict(design.constants)
    clone.external_signals = set(design.external_signals)
    for sfg in clone.sfgs:
        for block in sfg.blocks:
            for param in _PERTURBABLE.get(block.kind, ()):
                if param not in block.params:
                    continue
                nominal = float(block.params[param])  # type: ignore[arg-type]
                block.params[param] = nominal * (
                    1.0 + rng.gauss(0.0, tolerance)
                )
    return clone


def mismatch_analysis(
    result: "SynthesisResult",
    inputs: Optional[Mapping[str, Stimulus]] = None,
    output: Optional[str] = None,
    tolerance: float = 0.01,
    n_trials: int = 50,
    error_budget: float = 0.05,
    t_end: float = 1e-3,
    dt: float = 2e-6,
    seed: int = 1234,
) -> YieldReport:
    """Monte-Carlo yield estimate of a synthesized design.

    ``tolerance`` is the 1-sigma relative mismatch of every gain-setting
    parameter; ``error_budget`` is the rms deviation (relative to the
    nominal output scale) a trial may show and still count as passing.
    """
    inputs = dict(inputs or {})
    if output is None:
        outs = [
            name
            for name, info in result.design.ports.items()
            if info.direction == "out"
        ]
        if not outs:
            raise ValueError("design has no output port")
        output = outs[0]

    nominal = Interpreter(result.design, dt=dt, inputs=inputs).run(
        t_end, probes=[output]
    )
    scale = max(float(np.max(np.abs(nominal[output]))), 1e-9)
    budget_volts = error_budget * scale

    rng = random.Random(seed)
    report = YieldReport(tolerance=tolerance, error_budget=budget_volts)
    for index in range(n_trials):
        perturbed = _perturbed_design(result.design, tolerance, rng)
        trial_traces = Interpreter(perturbed, dt=dt, inputs=inputs).run(
            t_end, probes=[output]
        )
        error = trial_traces[output] - nominal[output]
        rms = float(np.sqrt(np.mean(error**2)))
        report.trials.append(
            MismatchTrial(
                index=index,
                rms_error=rms,
                max_error=float(np.max(np.abs(error))),
                passed=rms <= budget_volts,
            )
        )
    return report
