"""The end-to-end VASE flow: VASS text in, op-amp netlist out.

Mirrors Figure 1 of the paper: a VHDL-AMS (VASS) specification is
compiled into VHIF, simple FSMs are realized as analog control circuits
(zero-cross detectors, Schmitt triggers), the signal-flow graphs are
mapped by branch-and-bound architecture generation, interfacing
transformations buffer overloaded nets, and the performance estimation
tools price the result.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.compiler import CompilerOptions, compile_design
from repro.diagnostics import Diagnostic, Severity
from repro.estimation import ConstraintSet, Estimator, PerformanceEstimate
from repro.instrument import (
    ExplorationLog,
    Tracer,
    active_explog,
    active_tracer,
    explogging,
    trace_phase,
    tracing,
)
from repro.library import ComponentLibrary, PatternMatcher, default_library
from repro.synth import (
    InterfacingOptions,
    MapperOptions,
    MappingResult,
    Netlist,
    apply_interfacing,
    map_sfg,
)
from repro.synth.fsm_mapping import (
    FsmRealizationSummary,
    RealizedControl,
    realize_event_controls,
    summarize_fsm_realizations,
)
from repro.vhif.design import VhifDesign


@dataclass
class FlowOptions:
    """All knobs of the flow in one bag."""

    compiler: CompilerOptions = field(default_factory=CompilerOptions)
    mapper: MapperOptions = field(default_factory=MapperOptions)
    constraints: ConstraintSet = field(default_factory=ConstraintSet)
    interfacing: Optional[InterfacingOptions] = field(
        default_factory=InterfacingOptions
    )
    #: realize simple FSMs as analog comparator hardware before mapping
    realize_fsm_controls: bool = True
    #: derive constraint defaults from port annotations (the paper's
    #: declarative mechanism: FREQUENCY sets the signal bandwidth,
    #: RANGE / LIMITED set the amplitude the op amps must swing)
    derive_constraints_from_annotations: bool = True
    #: run the technology-independent peephole passes on the VHIF
    #: (scale fusion, negation absorption) before mapping
    optimize_vhif: bool = True
    #: collect a per-phase span trace of this run; the tracer lands on
    #: ``SynthesisResult.trace`` (``vase synth --trace`` renders it).
    #: When tracing is already active process-wide, spans always join
    #: the active tracer regardless of this knob.
    trace: bool = False
    #: record the decision-level exploration log of this run; the
    #: recorder lands on ``SynthesisResult.explog`` (``vase explain``
    #: renders it).  When a recorder is already active process-wide,
    #: events always join it regardless of this knob.
    explog: bool = False


@dataclass
class SynthesisResult:
    """Everything the flow produced for one design."""

    design: VhifDesign
    netlist: Netlist
    estimate: PerformanceEstimate
    mapping: MappingResult
    realized_controls: List[RealizedControl] = field(default_factory=list)
    #: per-FSM realization summary (analog vs digital fallback [8])
    fsm_summaries: List[FsmRealizationSummary] = field(default_factory=list)
    #: span trace of this run (when tracing was enabled)
    trace: Optional[Tracer] = None
    #: decision-level exploration log (when explog was enabled)
    explog: Optional[ExplorationLog] = None
    #: follower instances inserted by the interfacing transformations
    interfacing_added: List[object] = field(default_factory=list)

    @property
    def summary(self) -> str:
        """Table-1 style component summary."""
        return self.netlist.summary()

    @property
    def diagnostics(self) -> List[Diagnostic]:
        """Non-fatal problems collected across the flow stages.

        One consolidated list: the mapper's own diagnostics (e.g.
        node-budget truncation), a WARNING per FSM that fell back to
        digital synthesis [8] (its area lives outside the analog
        mapping), and a NOTE per follower the interfacing
        transformations inserted.
        """
        diagnostics = list(self.mapping.diagnostics)
        for summary in self.fsm_summaries:
            if summary.mode == "analog":
                continue
            diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    f"FSM {summary.fsm!r} uses the digital fallback "
                    f"({summary.describe()}); its standard-cell area "
                    "is estimated, not synthesized by the analog flow",
                )
            )
        for instance in self.interfacing_added:
            diagnostics.append(
                Diagnostic(
                    Severity.NOTE,
                    f"interfacing: inserted {instance.spec.name} "
                    f"{instance.name!r} buffering net "
                    f"{instance.inputs[0]!r}",
                )
            )
        return diagnostics

    def describe(self) -> str:
        stats = self.design.statistics()
        search = self.mapping.statistics
        lines = [
            f"design {self.design.name!r}:",
            f"  VHIF: {stats.n_blocks} blocks, {stats.n_states} states, "
            f"{stats.n_datapath} data-path elements",
            f"  netlist: {self.summary}",
            f"  {self.estimate.describe()}",
        ]
        if self.realized_controls:
            kinds = ", ".join(
                f"{r.signal}->{r.kind}" for r in self.realized_controls
            )
            lines.append(f"  FSM controls realized: {kinds}")
        for summary in self.fsm_summaries:
            if summary.mode != "analog":
                lines.append(f"  {summary.describe()}")
        search_line = (
            f"  search: {search.nodes_visited} nodes visited, "
            f"{search.nodes_pruned} pruned, "
            f"{search.complete_mappings} complete "
            f"({search.feasible_mappings} feasible), "
            f"{search.shared_branches} shared, "
            f"{search.runtime_s * 1e3:.1f} ms"
        )
        if search.truncated:
            search_line += " — TRUNCATED at node budget"
        lines.append(search_line)
        if search.constraint_violations:
            lines.append(
                "  infeasible mappings killed by: "
                f"{search.violation_summary()}"
            )
        return "\n".join(lines)

    @property
    def digital_fallback_area(self) -> float:
        """Standard-cell area of FSM parts outside the analog mapping."""
        return sum(s.estimated_area for s in self.fsm_summaries)


def derive_constraints(
    design: VhifDesign, base: ConstraintSet
) -> ConstraintSet:
    """Refine a constraint set from the design's port annotations.

    Only fields still at their dataclass defaults are derived, so an
    explicitly-configured constraint always wins:

    * ``signal_bandwidth_hz`` ← the widest FREQUENCY annotation;
    * ``signal_amplitude`` ← the largest RANGE magnitude or LIMITED
      level among the ports.
    """
    defaults = ConstraintSet()
    derived = ConstraintSet(**vars(base))

    if base.signal_bandwidth_hz == defaults.signal_bandwidth_hz:
        bands = [
            info.frequency_range[1]
            for info in design.ports.values()
            if info.frequency_range is not None
        ]
        if bands:
            derived.signal_bandwidth_hz = max(bands)

    if base.signal_amplitude == defaults.signal_amplitude:
        amplitudes = []
        for info in design.ports.values():
            if info.value_range is not None:
                low, high = info.value_range
                amplitudes.append(max(abs(low), abs(high)))
            if info.limit_level is not None:
                amplitudes.append(abs(info.limit_level))
            if info.drive_amplitude is not None:
                amplitudes.append(abs(info.drive_amplitude))
        if amplitudes:
            derived.signal_amplitude = max(amplitudes)
    return derived


def synthesize(
    source: str,
    entity_name: Optional[str] = None,
    library: Optional[ComponentLibrary] = None,
    options: Optional[FlowOptions] = None,
    architecture_name: Optional[str] = None,
) -> SynthesisResult:
    """Run the complete behavioral synthesis flow on VASS source text."""
    options = options or FlowOptions()
    library = library or default_library()

    # Honour the trace/explog knobs: start a recorder unless one is
    # already active (in which case this run's records join it).
    tracer = active_tracer()
    explog = active_explog()
    with ExitStack() as stack:
        if options.trace and tracer is None:
            tracer = stack.enter_context(tracing())
        if options.explog and explog is None:
            explog = stack.enter_context(explogging())
        result = _synthesize_traced(
            source, entity_name, library, options, architecture_name
        )
    result.trace = tracer
    result.explog = explog
    return result


def _synthesize_traced(
    source: str,
    entity_name: Optional[str],
    library: ComponentLibrary,
    options: FlowOptions,
    architecture_name: Optional[str],
) -> SynthesisResult:
    """The flow proper, one span per Figure-1 phase."""
    with trace_phase("synthesize") as flow_span:
        with trace_phase("compile"):
            design = compile_design(
                source,
                entity_name=entity_name,
                options=options.compiler,
                architecture_name=architecture_name,
            )
        flow_span.annotate(design=design.name)
        realized: List[RealizedControl] = []
        if options.realize_fsm_controls:
            with trace_phase("realize_fsm_controls") as span:
                realized = realize_event_controls(design)
                span.annotate(realized=len(realized))
        if options.optimize_vhif:
            from repro.vhif.optimize import optimize_design

            with trace_phase("optimize_vhif"):
                optimize_design(design)

        constraints = options.constraints
        if options.derive_constraints_from_annotations:
            constraints = derive_constraints(design, constraints)
        estimator = Estimator(constraints=constraints)
        matcher = PatternMatcher(
            library, enable_transforms=options.mapper.enable_transforms
        )
        with trace_phase("map") as span:
            mapping = map_sfg(
                design.main_sfg,
                library=library,
                estimator=estimator,
                options=options.mapper,
                matcher=matcher,
            )
            span.annotate(**mapping.statistics.as_dict())
        netlist = mapping.netlist
        interfacing_added: List[object] = []
        if options.interfacing is not None:
            with trace_phase("interfacing") as span:
                interfacing_added = apply_interfacing(
                    netlist, design, options.interfacing
                )
                span.annotate(followers_added=len(interfacing_added))
        with trace_phase("estimate") as span:
            estimate = estimator.estimate(netlist)
            span.annotate(area=estimate.area, opamps=estimate.opamps)
    return SynthesisResult(
        design=design,
        netlist=netlist,
        estimate=estimate,
        mapping=mapping,
        realized_controls=realized,
        fsm_summaries=summarize_fsm_realizations(design, realized),
        interfacing_added=interfacing_added,
    )
