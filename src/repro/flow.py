"""The end-to-end VASE flow: VASS text in, op-amp netlist out.

Mirrors Figure 1 of the paper: a VHDL-AMS (VASS) specification is
compiled into VHIF, simple FSMs are realized as analog control circuits
(zero-cross detectors, Schmitt triggers), the signal-flow graphs are
mapped by branch-and-bound architecture generation, interfacing
transformations buffer overloaded nets, and the performance estimation
tools price the result.

Since the staged-pipeline refactor the flow runs on
:class:`repro.pipeline.PipelineSession`: every phase is a cacheable
stage with a content-addressed key, so the recovery ladder compiles
the source once per distinct causalization, ``explore_solvers`` maps
all enumerated causalizations (concurrently on the backend
``FlowOptions.parallel`` selects — threads or spawned worker
processes), and ``vase batch``/``vase synth --cache`` can share
artifacts across runs (and across worker processes, through the
cache's on-disk tier).
"""

from __future__ import annotations

import time
import warnings
from contextlib import ExitStack
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.compiler import CompilerOptions
from repro.diagnostics import Diagnostic, Severity, SynthesisError, VaseError
from repro.estimation import ConstraintSet, PerformanceEstimate
from repro.instrument import (
    ExplorationLog,
    Tracer,
    active_explog,
    active_tracer,
    explogging,
    trace_phase,
    tracing,
)
from repro.instrument.events import (
    CATEGORY_CANCELLED,
    CATEGORY_LIFECYCLE,
    TelemetryBus,
    active_bus,
    current_run_id,
    new_run_id,
    run_scope,
    telemetry,
)
from repro.instrument.ledger import (
    RunLedger,
    record_for_cancelled,
    record_for_failure,
    record_for_result,
)
from repro.library import ComponentLibrary, default_library
from repro.pipeline import (
    ArtifactCache,
    ParallelOptions,
    PipelineSession,
    Task,
    create_executor,
    stats_delta,
    worker_cache,
)
from repro.robust.lifecycle import (
    CancelledError,
    RunContext,
    active_context,
    run_context,
)
from repro.robust.recovery import (
    OUTCOME_FAILED,
    OUTCOME_RECOVERED,
    OUTCOME_SKIPPED,
    RUNG_BASELINE,
    RUNG_CAUSALIZATION,
    RUNG_GREEDY,
    RUNG_RELAX,
    RecoveryEvent,
    RecoveryLog,
    RecoveryOptions,
    relax_constraints,
)
from repro.spice.linalg import use_backend
from repro.synth import (
    InterfacingOptions,
    MapperOptions,
    MappingResult,
    Netlist,
)
from repro.synth.fsm_mapping import (
    FsmRealizationSummary,
    RealizedControl,
    summarize_fsm_realizations,
)
from repro.vhif.design import VhifDesign


@dataclass
class FlowOptions:
    """All knobs of the flow in one bag."""

    compiler: CompilerOptions = field(default_factory=CompilerOptions)
    mapper: MapperOptions = field(default_factory=MapperOptions)
    constraints: ConstraintSet = field(default_factory=ConstraintSet)
    interfacing: Optional[InterfacingOptions] = field(
        default_factory=InterfacingOptions
    )
    #: realize simple FSMs as analog comparator hardware before mapping
    realize_fsm_controls: bool = True
    #: derive constraint defaults from port annotations (the paper's
    #: declarative mechanism: FREQUENCY sets the signal bandwidth,
    #: RANGE / LIMITED set the amplitude the op amps must swing)
    derive_constraints_from_annotations: bool = True
    #: run the technology-independent peephole passes on the VHIF
    #: (scale fusion, negation absorption) before mapping
    optimize_vhif: bool = True
    #: collect a per-phase span trace of this run; the tracer lands on
    #: ``SynthesisResult.trace`` (``vase synth --trace`` renders it).
    #: When tracing is already active process-wide, spans always join
    #: the active tracer regardless of this knob.
    trace: bool = False
    #: record the decision-level exploration log of this run; the
    #: recorder lands on ``SynthesisResult.explog`` (``vase explain``
    #: renders it).  When a recorder is already active process-wide,
    #: events always join it regardless of this knob.
    explog: bool = False
    #: climb the recovery ladder instead of dying on the first
    #: :class:`SynthesisError`: alternative DAE causalizations, the
    #: greedy mapper, bounded constraint relaxation.  Every attempt is
    #: recorded on ``SynthesisResult.recovery``; a recovered run is
    #: explicitly *degraded*, never silent.
    recovery: bool = False
    #: knobs of the recovery ladder (used only when ``recovery`` is on)
    recovery_options: RecoveryOptions = field(default_factory=RecoveryOptions)
    #: map *every* enumerated DAE causalization (the paper: each
    #: causalization yields a distinct solver SFG and "synthesis
    #: considers all of them") and keep the best-area feasible result;
    #: per-solver outcomes land on ``SynthesisResult.solver_exploration``
    #: and in the exploration log
    explore_solvers: bool = False
    #: execution backend and width for ``explore_solvers`` (and the
    #: default for batch runs built on this options bag): ``serial``,
    #: ``thread`` (the in-process pool) or ``process`` (spawned
    #: workers, true multi-core).  Results are deterministic — and
    #: byte-identical — regardless of backend and worker count.
    parallel: ParallelOptions = field(default_factory=ParallelOptions)
    #: deprecated — the pre-:class:`ParallelOptions` width knob.  Any
    #: non-``None`` value emits a :class:`DeprecationWarning` and is
    #: mapped onto ``parallel`` (``jobs > 1`` → the thread backend)
    #: unless ``parallel`` was set explicitly, which wins.
    jobs: Optional[int] = None
    #: artifact cache shared across runs (``vase synth --cache`` wires
    #: an on-disk one).  ``None`` means a private per-run cache: stages
    #: are still reused *within* the run — ladder rungs, solver
    #: exploration — but repeated calls (``vase profile``) stay cold.
    cache: Optional[ArtifactCache] = None
    #: telemetry bus for this run (``vase synth --events`` wires a
    #: JSONL sink onto one).  Installing a bus process-wide for the
    #: run's duration also turns on tracing and exploration logging if
    #: they are off, so a single run emits every event category.  When
    #: a bus is already active process-wide, events always join it
    #: regardless of this knob.
    telemetry: Optional[TelemetryBus] = None
    #: run ledger this run appends its outcome record to (the CLI
    #: resolves ``.vase-ledger/`` / ``VASE_LEDGER`` onto this knob;
    #: ``None`` means no persistence)
    ledger: Optional[RunLedger] = None
    #: whole-flow wall-clock budget in seconds.  Generalises the
    #: mapper's ``deadline_s``: the budget is installed on the run's
    #: lifecycle context and checked at every pipeline stage boundary
    #: *and* inside the mapper's branch loop; exhausting it raises
    #: :class:`~repro.robust.lifecycle.DeadlineExceeded`.  A runtime
    #: knob like ``parallel``: deliberately excluded from every content
    #: fingerprint (stage cache keys, ledger options digests).
    deadline_s: Optional[float] = None
    #: linear-solver backend preference for every SPICE-level solve of
    #: this run (``auto`` / ``dense`` / ``batched`` / ``sparse``, see
    #: :mod:`repro.spice.linalg`).  Installed as the thread-local
    #: backend default for the run's duration.  Results are
    #: backend-identical by construction, so — like ``parallel`` and
    #: ``deadline_s`` — the knob is deliberately excluded from every
    #: content fingerprint (stage cache keys, ledger options digests).
    linalg: str = "auto"

    def __post_init__(self):
        if self.jobs is not None:
            warnings.warn(
                "FlowOptions.jobs is deprecated; use "
                "FlowOptions.parallel=ParallelOptions(executor=..., "
                "workers=...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            if self.parallel == ParallelOptions():
                self.parallel = ParallelOptions.from_jobs(self.jobs)
            # Consume the shim so dataclasses.replace() on this bag
            # does not warn again (the mapping is already on parallel).
            self.jobs = None


@dataclass
class SolverOutcome:
    """What mapping one DAE causalization produced (explore_solvers)."""

    #: causalization index (the compiler's ``solver_index``)
    solver: int
    #: did branch-and-bound find a feasible mapping for this solver SFG
    feasible: bool
    area: Optional[float] = None
    opamps: Optional[int] = None
    #: failure text when infeasible
    detail: str = ""
    #: True for the best-area feasible solver the flow kept
    chosen: bool = False

    def as_dict(self) -> Dict[str, object]:
        return {
            "solver": self.solver,
            "feasible": self.feasible,
            "area": self.area,
            "opamps": self.opamps,
            "detail": self.detail,
            "chosen": self.chosen,
        }

    def describe(self) -> str:
        if not self.feasible:
            return f"solver #{self.solver}: infeasible ({self.detail})"
        line = (
            f"solver #{self.solver}: area {self.area * 1e12:,.0f} um^2, "
            f"{self.opamps} op amp(s)"
        )
        if self.chosen:
            line += " — selected"
        return line


@dataclass
class SynthesisResult:
    """Everything the flow produced for one design."""

    design: VhifDesign
    netlist: Netlist
    estimate: PerformanceEstimate
    mapping: MappingResult
    realized_controls: List[RealizedControl] = field(default_factory=list)
    #: per-FSM realization summary (analog vs digital fallback [8])
    fsm_summaries: List[FsmRealizationSummary] = field(default_factory=list)
    #: span trace of this run (when tracing was enabled)
    trace: Optional[Tracer] = None
    #: decision-level exploration log (when explog was enabled)
    explog: Optional[ExplorationLog] = None
    #: follower instances inserted by the interfacing transformations
    interfacing_added: List[object] = field(default_factory=list)
    #: recovery-ladder events (non-empty only when synthesis initially
    #: failed and ``FlowOptions.recovery`` climbed the ladder)
    recovery: List[RecoveryEvent] = field(default_factory=list)
    #: per-causalization outcomes (non-empty only when
    #: ``FlowOptions.explore_solvers`` mapped more than one solver)
    solver_exploration: List[SolverOutcome] = field(default_factory=list)
    #: artifact-cache counters of the run's pipeline session
    cache_stats: Optional[Dict[str, object]] = None
    #: telemetry run id of this run (every bus event and the ledger
    #: record of the run carry the same id)
    run_id: Optional[str] = None

    @property
    def summary(self) -> str:
        """Table-1 style component summary."""
        return self.netlist.summary()

    @property
    def diagnostics(self) -> List[Diagnostic]:
        """Non-fatal problems collected across the flow stages.

        One consolidated list: the mapper's own diagnostics (e.g.
        node-budget truncation), a WARNING per FSM that fell back to
        digital synthesis [8] (its area lives outside the analog
        mapping), and a NOTE per follower the interfacing
        transformations inserted.
        """
        diagnostics = list(self.mapping.diagnostics)
        for summary in self.fsm_summaries:
            if summary.mode == "analog":
                continue
            diagnostics.append(
                Diagnostic(
                    Severity.WARNING,
                    f"FSM {summary.fsm!r} uses the digital fallback "
                    f"({summary.describe()}); its standard-cell area "
                    "is estimated, not synthesized by the analog flow",
                )
            )
        for instance in self.interfacing_added:
            buffered = (
                f"buffering net {instance.inputs[0]!r}"
                if instance.inputs
                else "with no input net recorded"
            )
            diagnostics.append(
                Diagnostic(
                    Severity.NOTE,
                    f"interfacing: inserted {instance.spec.name} "
                    f"{instance.name!r} {buffered}",
                )
            )
        for event in self.recovery:
            severity = (
                Severity.WARNING
                if event.outcome == OUTCOME_RECOVERED
                else Severity.NOTE
            )
            diagnostics.append(
                Diagnostic(severity, f"recovery: {event.describe()}")
            )
        return diagnostics

    @property
    def degraded(self) -> bool:
        """True when this result exists only thanks to the ladder."""
        return any(e.outcome == OUTCOME_RECOVERED for e in self.recovery)

    def describe(self) -> str:
        stats = self.design.statistics()
        search = self.mapping.statistics
        lines = [
            f"design {self.design.name!r}:",
            f"  VHIF: {stats.n_blocks} blocks, {stats.n_states} states, "
            f"{stats.n_datapath} data-path elements",
            f"  netlist: {self.summary}",
            f"  {self.estimate.describe()}",
        ]
        if self.realized_controls:
            kinds = ", ".join(
                f"{r.signal}->{r.kind}" for r in self.realized_controls
            )
            lines.append(f"  FSM controls realized: {kinds}")
        for summary in self.fsm_summaries:
            if summary.mode != "analog":
                lines.append(f"  {summary.describe()}")
        search_line = (
            f"  search: {search.nodes_visited} nodes visited, "
            f"{search.nodes_pruned} pruned, "
            f"{search.complete_mappings} complete "
            f"({search.feasible_mappings} feasible), "
            f"{search.shared_branches} shared, "
            f"{search.runtime_s * 1e3:.1f} ms"
        )
        if search.truncated:
            where = (
                "wall-clock deadline"
                if search.truncated_reason == "deadline"
                else "node budget"
            )
            search_line += f" — TRUNCATED at {where}"
        lines.append(search_line)
        if search.constraint_violations:
            lines.append(
                "  infeasible mappings killed by: "
                f"{search.violation_summary()}"
            )
        if self.solver_exploration:
            lines.append(
                f"  solver exploration "
                f"({len(self.solver_exploration)} causalization(s)):"
            )
            for outcome in self.solver_exploration:
                lines.append(f"    {outcome.describe()}")
        if self.recovery:
            lines.append(
                f"  recovery ladder ({len(self.recovery)} attempt(s), "
                f"result {'DEGRADED' if self.degraded else 'not recovered'}):"
            )
            for event in self.recovery:
                lines.append(f"    {event.describe()}")
        if self.cache_stats and self.cache_stats.get("hits"):
            lines.append(
                f"  pipeline cache: {self.cache_stats['hits']} stage "
                f"hit(s), {self.cache_stats['misses']} miss(es)"
            )
        return "\n".join(lines)

    @property
    def digital_fallback_area(self) -> float:
        """Standard-cell area of FSM parts outside the analog mapping."""
        return sum(s.estimated_area for s in self.fsm_summaries)


def derive_constraints(
    design: VhifDesign, base: ConstraintSet
) -> ConstraintSet:
    """Refine a constraint set from the design's port annotations.

    Only fields still at their dataclass defaults are derived, so an
    explicitly-configured constraint always wins:

    * ``signal_bandwidth_hz`` ← the widest FREQUENCY annotation;
    * ``signal_amplitude`` ← the largest RANGE magnitude or LIMITED
      level among the ports.
    """
    defaults = ConstraintSet()
    derived = ConstraintSet(**vars(base))

    if base.signal_bandwidth_hz == defaults.signal_bandwidth_hz:
        bands = [
            info.frequency_range[1]
            for info in design.ports.values()
            if info.frequency_range is not None
        ]
        if bands:
            derived.signal_bandwidth_hz = max(bands)

    if base.signal_amplitude == defaults.signal_amplitude:
        amplitudes = []
        for info in design.ports.values():
            if info.value_range is not None:
                low, high = info.value_range
                amplitudes.append(max(abs(low), abs(high)))
            if info.limit_level is not None:
                amplitudes.append(abs(info.limit_level))
            if info.drive_amplitude is not None:
                amplitudes.append(abs(info.drive_amplitude))
        if amplitudes:
            derived.signal_amplitude = max(amplitudes)
    return derived


def synthesize(
    source: str,
    entity_name: Optional[str] = None,
    library: Optional[ComponentLibrary] = None,
    options: Optional[FlowOptions] = None,
    architecture_name: Optional[str] = None,
    source_filename: Optional[str] = None,
) -> SynthesisResult:
    """Run the complete behavioral synthesis flow on VASS source text.

    With ``options.recovery`` enabled, a :class:`SynthesisError` does
    not kill the run immediately: the recovery ladder retries with
    alternative DAE causalizations, then the greedy mapper, then
    bounded constraint relaxation, and the returned result records
    every attempt on ``SynthesisResult.recovery``.

    With ``options.explore_solvers`` enabled, every enumerated DAE
    causalization is mapped (concurrently, on the backend
    ``options.parallel`` selects) and the best-area feasible result is
    returned, the others recorded on
    ``SynthesisResult.solver_exploration``.
    """
    options = options or FlowOptions()
    library = library or default_library()
    session = PipelineSession(
        source,
        entity_name=entity_name,
        architecture_name=architecture_name,
        source_filename=source_filename,
        options=options,
        library=library,
        cache=options.cache,
    )

    # Honour the trace/explog/telemetry knobs: start a recorder unless
    # one is already active (in which case this run's records join it).
    tracer = active_tracer()
    explog = active_explog()
    started = time.perf_counter()
    with ExitStack() as stack:
        if options.telemetry is not None and active_bus() is None:
            stack.enter_context(telemetry(options.telemetry))
            # A run that asked for a bus should put every category on
            # it: give the run a tracer and an exploration recorder
            # unless the caller already has them on.
            if tracer is None:
                tracer = stack.enter_context(tracing())
            if explog is None:
                explog = stack.enter_context(explogging())
        if options.trace and tracer is None:
            tracer = stack.enter_context(tracing())
        if options.explog and explog is None:
            explog = stack.enter_context(explogging())
        # Linear-solver preference for every SPICE-level solve of this
        # run; thread-local, so concurrent served jobs don't race.
        stack.enter_context(use_backend(options.linalg))
        run_id = current_run_id()
        if run_id is None:
            run_id = new_run_id()
            stack.enter_context(run_scope(run_id))
        # Install the run-lifecycle context: an enclosing context (a
        # served job's cancellation token, a worker's relayed token)
        # is narrowed to the tighter deadline; otherwise a whole-flow
        # budget gets a fresh context of its own.
        if options.deadline_s is not None:
            enclosing = active_context()
            stack.enter_context(run_context(
                enclosing.child(options.deadline_s)
                if enclosing is not None
                else RunContext.create(options.deadline_s)
            ))
        source_label = source_filename or entity_name or "<vass>"
        bus = active_bus()
        if bus is not None:
            # The effective knobs ride on the started event so stream
            # consumers (the SSE watch client, the serve job router)
            # can label the run without a second lookup.
            bus.publish(
                CATEGORY_LIFECYCLE,
                {
                    "kind": "run",
                    "phase": "started",
                    "source": source_label,
                    "recovery": options.recovery,
                    "explore_solvers": options.explore_solvers,
                },
            )
        try:
            try:
                if options.explore_solvers:
                    result = _explore_solvers(session)
                else:
                    result = _synthesize_staged(session)
            except SynthesisError as err:
                if not options.recovery:
                    raise
                result = _recover(session, err)
        except CancelledError as err:
            # Cancelled / over-budget runs still leave a full audit
            # trail: a terminal lifecycle event, a cancellation event,
            # and a ledger record with the "cancelled" outcome.
            elapsed = time.perf_counter() - started
            if bus is not None:
                bus.publish(
                    CATEGORY_LIFECYCLE,
                    {
                        "kind": "run",
                        "phase": "finished",
                        "status": "cancelled",
                        "source": source_label,
                        "error": str(err),
                        "elapsed_s": elapsed,
                    },
                )
                bus.publish(
                    CATEGORY_CANCELLED,
                    {
                        "source": source_label,
                        "reason": str(err),
                        "elapsed_s": elapsed,
                    },
                )
            if options.ledger is not None:
                options.ledger.append(record_for_cancelled(
                    run_id, source, source_label, elapsed, options,
                    str(err),
                ))
            raise
        except SynthesisError as err:
            elapsed = time.perf_counter() - started
            if bus is not None:
                bus.publish(
                    CATEGORY_LIFECYCLE,
                    {
                        "kind": "run",
                        "phase": "finished",
                        "status": "failed",
                        "source": source_label,
                        "error": str(err),
                        "elapsed_s": elapsed,
                    },
                )
            if options.ledger is not None:
                options.ledger.append(record_for_failure(
                    run_id, source, source_label, elapsed, options, err,
                ))
            raise
        result.trace = tracer
        result.explog = explog
        result.cache_stats = session.cache.stats.as_dict()
        result.run_id = run_id
        elapsed = time.perf_counter() - started
        if bus is not None:
            bus.publish(
                CATEGORY_LIFECYCLE,
                {
                    "kind": "run",
                    "phase": "finished",
                    "status": "degraded" if result.degraded else "ok",
                    "source": source_label,
                    "design": result.design.name,
                    "elapsed_s": elapsed,
                },
            )
        if options.ledger is not None:
            label = (
                source_label if source_label != "<vass>"
                else result.design.name
            )
            options.ledger.append(record_for_result(
                result, source, label, elapsed, options,
            ))
    return result


def _emit_recovery(event: RecoveryEvent) -> None:
    """Mirror a ladder event into the active exploration log, if any."""
    explog = active_explog()
    if explog is not None:
        explog.emit("recovery", **event.as_dict())


def transportable_options(options: FlowOptions) -> FlowOptions:
    """A copy of ``options`` fit for the process-backend pickling
    boundary: live in-process resources (cache, telemetry bus, ledger)
    are dropped — workers rebuild the cache from its disk directory,
    telemetry is forwarded over the result channel, the ledger is
    written by the submitting side — and ``parallel`` is reset to
    serial so a worker never recursively spawns its own pool."""
    return replace(
        options,
        cache=None,
        telemetry=None,
        ledger=None,
        parallel=ParallelOptions(),
        jobs=None,
    )


@dataclass(frozen=True)
class _SessionPayload:
    """Everything a worker process needs to rebuild a pipeline session."""

    source: str
    entity_name: Optional[str]
    architecture_name: Optional[str]
    source_filename: Optional[str]
    options: FlowOptions
    library: ComponentLibrary
    #: shared on-disk cache tier (``None``: worker-private memory cache)
    cache_dir: Optional[str]


def _session_payload(session: PipelineSession) -> _SessionPayload:
    disk_dir = session.cache.disk_dir
    return _SessionPayload(
        source=session.source,
        entity_name=session.entity_name,
        architecture_name=session.architecture_name,
        source_filename=session.source_filename,
        options=transportable_options(session.options),
        library=session.library,
        cache_dir=str(disk_dir) if disk_dir is not None else None,
    )


def _solver_attempt_local(session: PipelineSession, index: int):
    """One causalization attempt against the shared live session."""
    try:
        return index, _synthesize_staged(session, solver_index=index), \
            None, None
    except SynthesisError as err:
        return index, None, err, None


def _solver_attempt_remote(payload: _SessionPayload, index: int):
    """One causalization attempt inside a worker process.

    Rebuilds the session from the picklable payload (per-process cache
    over the shared disk tier) and ships back the cache-counter delta
    this attempt caused, so the submitting side's aggregate stats stay
    truthful."""
    cache = (
        worker_cache(payload.cache_dir)
        if payload.cache_dir is not None else None
    )
    session = PipelineSession(
        payload.source,
        entity_name=payload.entity_name,
        architecture_name=payload.architecture_name,
        source_filename=payload.source_filename,
        options=payload.options,
        library=payload.library,
        cache=cache,
    )
    before = session.cache.stats.as_dict()
    index, result, error, _ = _solver_attempt_local(session, index)
    delta = stats_delta(before, session.cache.stats.as_dict())
    return index, result, error, delta


def _explore_solvers(session: PipelineSession) -> SynthesisResult:
    """Map every enumerated causalization, keep the best-area result.

    The paper states that each DAE causalization yields a distinct
    solver SFG and that synthesis considers all of them; this is that
    mode.  Attempts run on the executor ``options.parallel`` selects
    (inline, thread pool, or spawned worker processes); the winner is
    ``min`` by ``(area, solver_index)``, so the choice is
    deterministic no matter how many workers raced.  One
    ``solver_explored`` explog event per solver is emitted — from the
    calling thread, after the executor drained.
    """
    options = session.options
    with trace_phase("explore_solvers") as span:
        causalizations = session.enumerate_causalizations()
        count = len(causalizations)
        span.annotate(solvers=count)
        if count <= 1:
            # Nothing to explore; run the plain staged flow so the
            # usual spans/diagnostics shape is preserved.
            return _synthesize_staged(session)

        # Workers inherit the submitting thread's run id (the executor
        # re-enters / forwards it), so their telemetry — cache ops,
        # metric deltas — lands on this run with dense seqs.
        with create_executor(options.parallel.bounded(count)) as executor:
            span.annotate(executor=executor.kind)
            if executor.distributed:
                payload = _session_payload(session)
                tasks = [
                    Task(_solver_attempt_remote, (payload, index))
                    for index in range(count)
                ]
            else:
                tasks = [
                    Task(_solver_attempt_local, (session, index))
                    for index in range(count)
                ]
            outcomes = executor.map_ordered(tasks)

        best_index: Optional[int] = None
        best_result: Optional[SynthesisResult] = None
        exploration: List[SolverOutcome] = []
        last_error: Optional[SynthesisError] = None
        for index, result, error, delta in outcomes:
            if delta is not None:
                session.cache.stats.apply_delta(delta)
            if result is not None:
                area = result.estimate.area
                if best_result is None or (
                    (area, index)
                    < (best_result.estimate.area, best_index)
                ):
                    best_index, best_result = index, result
                exploration.append(SolverOutcome(
                    solver=index,
                    feasible=True,
                    area=area,
                    opamps=result.estimate.opamps,
                ))
            else:
                last_error = error
                exploration.append(SolverOutcome(
                    solver=index, feasible=False, detail=str(error),
                ))

        explog = active_explog()
        for outcome in exploration:
            outcome.chosen = outcome.solver == best_index
            if explog is not None:
                explog.emit("solver_explored", **outcome.as_dict())

        if best_result is None:
            raise SynthesisError(
                f"explore_solvers: none of {count} causalization(s) "
                f"mapped feasibly (last failure: {last_error})",
                statistics=getattr(last_error, "statistics", None),
            )
        span.annotate(winner=best_index)
        best_result.solver_exploration = exploration
        return best_result


def _recover(
    session: PipelineSession, failure: SynthesisError
) -> SynthesisResult:
    """Climb the recovery ladder after a failed synthesis attempt.

    Rungs, in order: alternative DAE causalizations (a different VHIF
    topology may map feasibly), the greedy first-solution mapper (finds
    *a* feasible mapping where the exhaustive search hit its budget),
    and bounded constraint relaxation driven by the named violation
    tally of the failed searches.  Returns the first recovered result
    (its ``recovery`` list holds the whole climb) or re-raises a
    :class:`SynthesisError` summarizing every attempted rung.

    All rungs run on the shared pipeline session, so the source is
    parsed once, compiled once per distinct causalization, and the
    greedy/relaxation rungs reuse the compiled/optimized VHIF artifact
    outright.
    """
    options = session.options
    ropts = options.recovery_options
    log = RecoveryLog()
    _emit_recovery(log.record(
        RUNG_BASELINE, "branch-and-bound mapping",
        OUTCOME_FAILED, str(failure),
    ))
    last_stats = failure.statistics

    def _finish(result: SynthesisResult) -> SynthesisResult:
        result.recovery = list(log.events)
        return result

    # Rung 1: alternative DAE causalizations.  Exactly one event when
    # the rung cannot run: FAILED when enumeration itself died, SKIPPED
    # when it succeeded but offered no alternative.
    if not ropts.try_causalizations:
        _emit_recovery(log.record(
            RUNG_CAUSALIZATION, "alternative DAE causalizations",
            OUTCOME_SKIPPED, "disabled by RecoveryOptions",
        ))
    else:
        causalizations = None
        try:
            causalizations = session.enumerate_causalizations(
                max_solvers=max(
                    options.compiler.max_solvers,
                    ropts.max_causalizations + 1,
                ),
            )
        except VaseError as err:
            _emit_recovery(log.record(
                RUNG_CAUSALIZATION, "enumerate DAE causalizations",
                OUTCOME_FAILED, str(err),
            ))
        if causalizations is not None:
            if len(causalizations) <= 1:
                _emit_recovery(log.record(
                    RUNG_CAUSALIZATION, "alternative DAE causalizations",
                    OUTCOME_SKIPPED,
                    f"{len(causalizations)} causalization(s) available",
                ))
            else:
                baseline = min(
                    options.compiler.solver_index, len(causalizations) - 1
                )
                tried = 0
                for index in range(len(causalizations)):
                    if (
                        index == baseline
                        or tried >= ropts.max_causalizations
                    ):
                        continue
                    tried += 1
                    try:
                        result = _synthesize_staged(
                            session, solver_index=index
                        )
                    except SynthesisError as err:
                        last_stats = err.statistics or last_stats
                        _emit_recovery(log.record(
                            RUNG_CAUSALIZATION, f"causalization #{index}",
                            OUTCOME_FAILED, str(err),
                        ))
                        continue
                    _emit_recovery(log.record(
                        RUNG_CAUSALIZATION, f"causalization #{index}",
                        OUTCOME_RECOVERED,
                        "alternative VHIF topology mapped feasibly",
                    ))
                    return _finish(result)

    # Rung 2: the greedy first-solution mapper (no unconstrained
    # fallback here — an infeasible greedy mapping must fail the rung
    # so constraint relaxation gets its turn).
    if not ropts.try_greedy:
        _emit_recovery(log.record(
            RUNG_GREEDY, "greedy mapper",
            OUTCOME_SKIPPED, "disabled by RecoveryOptions",
        ))
    else:
        try:
            result = _synthesize_staged(session, use_greedy=True)
        except SynthesisError as err:
            last_stats = err.statistics or last_stats
            _emit_recovery(log.record(
                RUNG_GREEDY, "greedy mapper", OUTCOME_FAILED, str(err),
            ))
        else:
            _emit_recovery(log.record(
                RUNG_GREEDY, "greedy mapper", OUTCOME_RECOVERED,
                "first-solution heuristic found a feasible mapping "
                "(not proven optimal)",
            ))
            return _finish(result)

    # Rung 3: bounded constraint relaxation driven by the named
    # violation tally of the failed searches.
    if not ropts.try_relaxation:
        _emit_recovery(log.record(
            RUNG_RELAX, "constraint relaxation",
            OUTCOME_SKIPPED, "disabled by RecoveryOptions",
        ))
    else:
        violations: Dict[str, int] = {}
        if last_stats is not None:
            violations = dict(
                getattr(last_stats, "constraint_violations", {}) or {}
            )
        if not violations:
            _emit_recovery(log.record(
                RUNG_RELAX, "constraint relaxation", OUTCOME_SKIPPED,
                "the failed searches named no violated constraints",
            ))
        else:
            current = options.constraints
            if options.derive_constraints_from_annotations:
                try:
                    design, _realized, _key = session.prepared()
                    current = derive_constraints(design, current)
                except VaseError:
                    pass  # relax the explicit set instead
            for step in range(1, ropts.max_relax_steps + 1):
                relaxed, changes = relax_constraints(
                    current, violations, ropts.relax_factor
                )
                if not changes:
                    _emit_recovery(log.record(
                        RUNG_RELAX, f"relax step {step}", OUTCOME_SKIPPED,
                        "no named violation is relaxable",
                    ))
                    break
                action = f"relax step {step}: " + "; ".join(changes)
                try:
                    result = _synthesize_staged(
                        session, constraints_override=relaxed
                    )
                except SynthesisError as err:
                    current = relaxed
                    if err.statistics is not None and getattr(
                        err.statistics, "constraint_violations", None
                    ):
                        violations = dict(
                            err.statistics.constraint_violations
                        )
                    last_stats = err.statistics or last_stats
                    _emit_recovery(log.record(
                        RUNG_RELAX, action, OUTCOME_FAILED, str(err),
                    ))
                    continue
                _emit_recovery(log.record(
                    RUNG_RELAX, action, OUTCOME_RECOVERED,
                    "constraints loosened; result is DEGRADED relative "
                    "to the original specification",
                ))
                return _finish(result)

    ladder = " | ".join(event.describe() for event in log.events)
    raise SynthesisError(
        f"{failure} [recovery ladder exhausted after "
        f"{len(log.events)} attempt(s): {ladder}]",
        statistics=failure.statistics,
    )


def _synthesize_staged(
    session: PipelineSession,
    solver_index: Optional[int] = None,
    use_greedy: bool = False,
    constraints_override: Optional[ConstraintSet] = None,
) -> SynthesisResult:
    """The flow proper: one pipeline stage (and span) per phase.

    ``use_greedy`` and ``constraints_override`` are the recovery
    ladder's hooks: the former swaps the branch-and-bound mapper for
    the greedy heuristic (without its unconstrained fallback), the
    latter replaces the constraint set entirely — annotation-derived
    defaults included, since relaxation starts from the derived set.
    ``solver_index`` is the causalization hook shared by the ladder
    and the solver-space exploration.  Every stage consults the
    session's artifact cache, so repeated calls only pay for what
    actually changed.
    """
    options = session.options
    with trace_phase("synthesize") as flow_span:
        design, realized, design_key = session.prepared(solver_index)
        flow_span.annotate(design=design.name)

        if constraints_override is not None:
            constraints = constraints_override
        else:
            constraints = options.constraints
            if options.derive_constraints_from_annotations:
                constraints = derive_constraints(design, constraints)

        mapping, map_key = session.mapped(
            design, design_key, constraints, use_greedy
        )
        netlist = mapping.netlist
        interfacing_added: List[object] = []
        upstream_key = map_key
        if options.interfacing is not None:
            netlist, interfacing_added, upstream_key = session.interfaced(
                netlist, design, map_key
            )
            mapping.netlist = netlist
        estimate, _ = session.estimated(netlist, constraints, upstream_key)
    return SynthesisResult(
        design=design,
        netlist=netlist,
        estimate=estimate,
        mapping=mapping,
        realized_controls=realized,
        fsm_summaries=summarize_fsm_realizations(design, realized),
        interfacing_added=interfacing_added,
    )
