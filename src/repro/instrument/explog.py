"""Decision-level exploration recorder for the synthesis search.

PR 1 gave the flow phase-level spans and counters; this module records
*why* the Figure-5 branch-and-bound search did what it did.  While a
recorder is active, the mapper streams one structured event per
decision — candidate enumeration (with the sequencing order actually
used), allocate vs. share branches, prune events carrying both bound
values and the incumbent area they lost to, complete/infeasible
outcomes with the concrete constraint violations, truncation — and the
DAE compiler records which causalization alternative each solver SFG
uses.  The log renders as JSON Lines (one event per line) and is the
input of ``vase explain``.

The activation pattern mirrors the tracer: hot call sites capture
``active_explog()`` once per run and guard every emit with an
``is None`` test, so the disabled path costs one global load at search
start and nothing per decision — no events, no allocations.

Event vocabulary (the ``event`` field):

``search_start``
    one per mapper run: SFG name, search options, ``min_area``.
``candidates``
    one per visited frontier block: the root block and the candidate
    cones in the order the sequencing rule will try them.
``alloc`` / ``share``
    one branch taken: the component (or reused instance), the covered
    cone, and the op-amp count after the branch.
``prune``
    a partial mapping abandoned by the bounding rule; carries
    ``minarea_bound``, ``exact_bound``, the effective ``lower_bound``
    and the ``incumbent_area`` it lost to.
``complete``
    a complete mapping reached the estimator; carries the estimated
    area/power/op-amps, ``feasible``, and — when infeasible — the
    violated constraint names and messages.
``dead_end``
    a frontier block with no candidate cones (or an uncovered
    fragment).
``truncated``
    the search stopped early; ``reason`` says what expired (``nodes``
    for the ``max_nodes`` budget, ``deadline`` for the wall-clock
    ``deadline_s``).
``search_end``
    one per mapper run: the final :class:`MappingStatistics` dict.
``causalization``
    one per DAE solver emission: how many alternatives were
    enumerated, which one was chosen, its states and evaluation order.
``recovery``
    one per recovery-ladder attempt (``FlowOptions.recovery``): the
    rung, the action tried, and whether it ``failed`` / ``recovered`` /
    was ``skipped``.

Every event also carries ``seq`` (a per-recorder monotonically
increasing sequence number), ``ts`` (the wall-clock epoch time of the
decision, so exploration JSONL correlates with trace spans and
telemetry events) and, when the mapper collects the
Figure-6 tree, the decision-tree ``node``/``parent`` ids, so the JSONL
replays into the same structure ``vase explain --dot`` renders.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, IO, Iterator, List, Optional

from repro.instrument.events import CATEGORY_EXPLOG, active_bus


class ExplorationLog:
    """Collects exploration events; optionally streams them as JSONL.

    Events are plain dicts (JSON-ready).  With a ``stream``, each event
    is additionally written as one JSON line the moment it is emitted,
    so a crashed or truncated search still leaves a usable log.
    """

    def __init__(self, stream: Optional[IO[str]] = None):
        self.events: List[Dict[str, object]] = []
        self._stream = stream
        self._seq = 0

    # -- publishing (hot path while enabled) -------------------------------

    def emit(self, event: str, **fields: object) -> Dict[str, object]:
        """Record one event; returns the stored dict."""
        record: Dict[str, object] = {
            "seq": self._seq,
            "ts": time.time(),
            "event": event,
        }
        self._seq += 1
        record.update(fields)
        self.events.append(record)
        if self._stream is not None:
            self._stream.write(json.dumps(record, default=str) + "\n")
        bus = active_bus()
        if bus is not None:
            bus.publish(CATEGORY_EXPLOG, dict(record))
        return record

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Dict[str, object]]:
        return iter(self.events)

    def of_kind(self, event: str) -> List[Dict[str, object]]:
        """All events with the given ``event`` kind, in emission order."""
        return [e for e in self.events if e["event"] == event]

    def prune_breakdown(self) -> Dict[str, int]:
        """Prune counts keyed by the bound that was decisive.

        ``minarea`` — the paper's op-amp-count bound was the tighter
        one; ``exact`` — the accumulated exact area was; ``tie`` —
        both bounds agree.
        """
        breakdown: Dict[str, int] = {}
        for event in self.of_kind("prune"):
            minarea = float(event["minarea_bound"])  # type: ignore[arg-type]
            exact = float(event["exact_bound"])  # type: ignore[arg-type]
            if minarea > exact:
                key = "minarea"
            elif exact > minarea:
                key = "exact"
            else:
                key = "tie"
            breakdown[key] = breakdown.get(key, 0) + 1
        return breakdown

    # -- serialization -----------------------------------------------------

    def to_jsonl(self) -> str:
        """The whole log as JSON Lines text."""
        return "\n".join(
            json.dumps(event, default=str) for event in self.events
        ) + ("\n" if self.events else "")

    def write(self, path: str) -> None:
        """Write the log as a ``.jsonl`` file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    @classmethod
    def read(cls, path: str) -> "ExplorationLog":
        """Load a previously written JSONL log."""
        log = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    log.events.append(json.loads(line))
        log._seq = len(log.events)
        return log


# -- the active recorder (per thread) --------------------------------------
#
# Thread-local for the same reason as the tracer: the recorder's event
# list and sequence counter are not thread-safe, and the pipeline's
# worker pools run mapper searches on worker threads.  Workers see no
# recorder and emit nothing; the enabling thread's log is unchanged,
# and the solver-space exploration emits its per-solver events from
# the calling thread after the pool has joined.

_TLS = threading.local()


def active_explog() -> Optional[ExplorationLog]:
    """This thread's recorder, or ``None`` while logging is off.

    Hot call sites capture this once per run and guard each emit with
    an ``is None`` test — the whole disabled cost.
    """
    return getattr(_TLS, "explog", None)


def enable_explog(log: Optional[ExplorationLog] = None) -> ExplorationLog:
    """Install ``log`` (or a fresh one) as this thread's recorder."""
    # ``is None``, not truthiness: an empty log is falsy via __len__.
    _TLS.explog = log if log is not None else ExplorationLog()
    return _TLS.explog


def disable_explog() -> Optional[ExplorationLog]:
    """Deactivate exploration logging; returns the recorder that was on."""
    log = active_explog()
    _TLS.explog = None
    return log


class explogging:
    """Context manager: activate a recorder, restoring the previous one.

    >>> with explogging() as log:
    ...     map_sfg(sfg)
    >>> log.of_kind("prune")
    """

    def __init__(self, log: Optional[ExplorationLog] = None):
        self._log = log if log is not None else ExplorationLog()
        self._previous: Optional[ExplorationLog] = None

    def __enter__(self) -> ExplorationLog:
        self._previous = active_explog()
        _TLS.explog = self._log
        return self._log

    def __exit__(self, *exc) -> bool:
        _TLS.explog = self._previous
        return False
