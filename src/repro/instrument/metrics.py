"""Process-wide metrics registry: counters, gauges, histograms.

Hot paths of the flow publish effort counters here so a run can answer
"why was this slow" questions without a debugger:

* ``mapper.*`` — branch-and-bound decision nodes visited / pruned /
  shared, complete and feasible mappings, truncation events;
* ``patterns.*`` — candidate enumerations, cones examined, matches
  produced by the pattern matcher;
* ``estimator.*`` — per-instance estimates and two-stage op-amp sizing
  runs (cache misses);
* ``spice.*`` — MNA system factorizations and AC sweep points;
* ``frontend.*`` — lexer tokens and parser AST nodes.

The registry is deliberately primitive — dict updates under one lock,
guarded by an ``enabled`` flag — so publishing from a hot loop is
cheap (and safe from the pipeline's worker threads), and
:func:`MetricsRegistry.disable` turns every publish into one attribute
test.  Use ``metrics()`` for the process-wide instance; tests create
private registries.
"""

from __future__ import annotations

import math
import random
import threading
from typing import Dict, Optional

from repro.instrument.events import CATEGORY_METRIC, active_bus

#: reservoir size per histogram — enough for stable p50/p95 at the
#: observation counts the flow produces, small enough to stay cheap
RESERVOIR_SIZE = 512


class Histogram:
    """Streaming summary of observed values.

    Besides the exact count/sum/min/max running aggregates, a bounded
    reservoir (algorithm R with a fixed seed, so snapshots are
    deterministic for a given observation sequence) retains a sample
    of the values, from which :meth:`quantile` estimates p50/p95 for
    snapshots and the Prometheus summary export.
    """

    __slots__ = ("count", "total", "min", "max", "_reservoir", "_rng")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: list = []
        self._rng = random.Random(0)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < RESERVOIR_SIZE:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < RESERVOIR_SIZE:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate from the reservoir."""
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        index = min(
            len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1)
        )
        return ordered[index]

    def snapshot(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms for one process (or test)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # -- publishing (hot path) ---------------------------------------------------

    def inc(self, name: str, value: float = 1, publish: bool = True) -> None:
        """Add ``value`` to counter ``name``.

        ``publish=False`` skips the telemetry-bus mirror of the delta —
        required when the increment happens *inside* bus dispatch (the
        ``telemetry.subscriber_errors`` counter), where re-publishing
        would recurse into the failing subscriber forever.
        """
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value
        if not publish:
            return
        bus = active_bus()
        if bus is not None:
            bus.publish(
                CATEGORY_METRIC,
                {"kind": "counter", "name": name, "delta": value},
            )

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value
        bus = active_bus()
        if bus is not None:
            bus.publish(
                CATEGORY_METRIC,
                {"kind": "gauge", "name": name, "value": value},
            )

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)
        bus = active_bus()
        if bus is not None:
            bus.publish(
                CATEGORY_METRIC,
                {"kind": "histogram", "name": name, "value": value},
            )

    # -- switches ----------------------------------------------------------------

    def disable(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- reading -----------------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-data copy of everything, ready for ``json.dumps``."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def format_table(self) -> str:
        """Aligned text table of all metrics (for CLI output)."""
        lines = []
        for name, value in sorted(self._counters.items()):
            lines.append(f"{name:<40} {value:>12g}")
        for name, value in sorted(self._gauges.items()):
            lines.append(f"{name:<40} {value:>12g}  (gauge)")
        for name, histogram in sorted(self._histograms.items()):
            snap = histogram.snapshot()
            lines.append(
                f"{name:<40} {snap['count']:>12g}  "
                f"(mean {snap['mean']:g}, min {snap['min']:g}, "
                f"max {snap['max']:g})"
            )
        return "\n".join(lines)


#: The process-wide registry the flow publishes into.
_GLOBAL = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _GLOBAL
