"""Metrics regression gate over the benchmark JSON dumps.

The benchmarks already dump machine-readable metrics JSON under
``benchmarks/out/`` (payload + a snapshot of the process-wide metrics
registry).  Until now nothing compared run N against run N-1; this
module closes the loop: committed baseline files under
``benchmarks/baselines/`` pin the *deterministic* metrics of each
benchmark (search-effort counters, mapping statistics — never wall
times), and ``vase bench-check`` diffs a fresh run against them with
per-metric tolerances, exiting non-zero and naming the offending
metric on any drift.

Workflow::

    pytest benchmarks/test_bench_table1.py -q   # produce benchmarks/out/
    vase bench-check                            # gate against baselines
    vase bench-check --update                   # re-pin after an
                                                # intentional change

Timing values are excluded by key pattern (``*_s``, ``*_ms``,
``runtime*``, the per-phase timing lists), because the gate must be
machine-independent; everything that survives extraction is expected
to be deterministic, so the default relative tolerance is tight.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: payload keys that never enter a baseline (machine-dependent timing)
_TIMING_SUFFIXES = ("_s", "_ms", "_ns", "_seconds")
_TIMING_KEYS = {"phases", "runtime", "time", "timestamp"}

#: default relative tolerance; the gated metrics are deterministic in
#: one environment but may shift slightly across Python versions
DEFAULT_REL_TOLERANCE = 0.05


def _is_timing_key(key: str) -> bool:
    lowered = key.lower()
    if lowered in _TIMING_KEYS:
        return True
    return any(lowered.endswith(suffix) for suffix in _TIMING_SUFFIXES)


def _flatten(prefix: str, value: object, out: Dict[str, float]) -> None:
    if isinstance(value, bool):
        out[prefix] = float(value)
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key, item in value.items():
            if _is_timing_key(str(key)):
                continue
            _flatten(f"{prefix}.{key}" if prefix else str(key), item, out)
    # Strings and lists carry no gated metrics (phase lists are timing).


def extract_metrics(document: Dict[str, object]) -> Dict[str, float]:
    """The gate-able metrics of one benchmark dump, flattened.

    Takes the counters and gauges of the registry snapshot, histogram
    *counts* (their sums/means are timings), and every numeric scalar
    of the benchmark payload — excluding timing-named keys throughout.
    """
    out: Dict[str, float] = {}
    snapshot = document.get("metrics")
    if isinstance(snapshot, dict):
        for name, value in (snapshot.get("counters") or {}).items():
            if not _is_timing_key(name.rsplit(".", 1)[-1]):
                out[f"counters.{name}"] = float(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            if not _is_timing_key(name.rsplit(".", 1)[-1]):
                out[f"gauges.{name}"] = float(value)
        for name, hist in (snapshot.get("histograms") or {}).items():
            if isinstance(hist, dict) and "count" in hist:
                out[f"histograms.{name}.count"] = float(hist["count"])
    payload = document.get("payload")
    if isinstance(payload, dict):
        _flatten("payload", payload, out)
    return out


@dataclass
class Regression:
    """One out-of-tolerance metric."""

    benchmark: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    tolerance: float

    def __str__(self) -> str:
        if self.baseline is None:
            return (
                f"{self.benchmark}: no current metrics dump to compare "
                "against (run the benchmarks first)"
            )
        if self.current is None:
            return (
                f"{self.benchmark}: metric {self.metric!r} missing from "
                f"the current run (baseline {self.baseline:g})"
            )
        delta = self.current - self.baseline
        rel = (
            abs(delta) / abs(self.baseline) * 100.0
            if self.baseline else float("inf")
        )
        return (
            f"{self.benchmark}: metric {self.metric!r} drifted: "
            f"baseline {self.baseline:g} -> current {self.current:g} "
            f"({delta:+g}, {rel:.1f}% vs tolerance "
            f"{self.tolerance * 100:.1f}%)"
        )


@dataclass
class BenchCheckReport:
    """Outcome of one ``vase bench-check`` run."""

    checked: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    updated: List[str] = field(default_factory=list)
    regressions: List[Regression] = field(default_factory=list)
    metrics_compared: int = 0

    @property
    def passed(self) -> bool:
        return not self.regressions

    def describe(self) -> str:
        lines: List[str] = []
        for name in self.updated:
            lines.append(f"updated baseline: {name}")
        for name in self.skipped:
            lines.append(f"skipped (no current metrics dump): {name}")
        for regression in self.regressions:
            lines.append(f"REGRESSION: {regression}")
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(
            f"bench-check {verdict}: {len(self.checked)} benchmark(s), "
            f"{self.metrics_compared} metric(s) compared, "
            f"{len(self.regressions)} regression(s)"
            + (f", {len(self.skipped)} skipped" if self.skipped else "")
        )
        return "\n".join(lines)


def compare_metrics(
    benchmark: str,
    baseline: Dict[str, float],
    current: Dict[str, float],
    rel_tolerance: float = DEFAULT_REL_TOLERANCE,
    tolerances: Optional[Dict[str, float]] = None,
) -> Tuple[List[Regression], int]:
    """Diff ``current`` against ``baseline``; returns (regressions, n).

    A metric regresses when it is missing from the current run or when
    ``|current - baseline| > tolerance * |baseline|`` (any change at
    all for a zero baseline).  ``tolerances`` overrides the relative
    tolerance per metric name.
    """
    regressions: List[Regression] = []
    compared = 0
    overrides = tolerances or {}
    for metric, base_value in sorted(baseline.items()):
        tolerance = float(overrides.get(metric, rel_tolerance))
        if metric not in current:
            regressions.append(
                Regression(benchmark, metric, base_value, None, tolerance)
            )
            continue
        compared += 1
        cur_value = current[metric]
        if abs(cur_value - base_value) > tolerance * abs(base_value):
            regressions.append(
                Regression(benchmark, metric, base_value, cur_value,
                           tolerance)
            )
    return regressions, compared


def _read_json(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_baselines(
    baseline_dir: str,
    metrics_dir: str,
    rel_tolerance: float = DEFAULT_REL_TOLERANCE,
    update: bool = False,
    strict: bool = False,
) -> BenchCheckReport:
    """Gate every committed baseline against the current metrics dumps.

    With ``update``, the current values are written back as the new
    baselines instead (creating files for benchmarks that have a dump
    but no baseline yet).  With ``strict``, a baseline without a
    current dump is a regression rather than a skip.
    """
    report = BenchCheckReport()
    baselines = sorted(
        f for f in (os.listdir(baseline_dir) if os.path.isdir(baseline_dir) else [])
        if f.endswith(".json")
    )
    current_files = sorted(
        f for f in (os.listdir(metrics_dir) if os.path.isdir(metrics_dir) else [])
        if f.endswith(".json")
    )

    if update:
        os.makedirs(baseline_dir, exist_ok=True)
        for filename in current_files:
            document = _read_json(os.path.join(metrics_dir, filename))
            name = str(document.get("benchmark") or filename[:-5])
            existing_tolerances: Dict[str, float] = {}
            baseline_path = os.path.join(baseline_dir, filename)
            if os.path.exists(baseline_path):
                previous = _read_json(baseline_path)
                existing_tolerances = dict(previous.get("tolerances") or {})
            baseline_doc = {
                "benchmark": name,
                "metrics": extract_metrics(document),
                "tolerances": existing_tolerances,
            }
            with open(baseline_path, "w", encoding="utf-8") as handle:
                json.dump(baseline_doc, handle, indent=2, sort_keys=True)
                handle.write("\n")
            report.updated.append(filename)
        return report

    for filename in baselines:
        baseline_doc = _read_json(os.path.join(baseline_dir, filename))
        name = str(baseline_doc.get("benchmark") or filename[:-5])
        current_path = os.path.join(metrics_dir, filename)
        if not os.path.exists(current_path):
            if strict:
                report.regressions.append(
                    Regression(name, "<metrics dump>", None, None, 0.0)
                )
            report.skipped.append(filename)
            continue
        current = extract_metrics(_read_json(current_path))
        regressions, compared = compare_metrics(
            name,
            {k: float(v) for k, v in (baseline_doc.get("metrics") or {}).items()},
            current,
            rel_tolerance=rel_tolerance,
            tolerances={
                k: float(v)
                for k, v in (baseline_doc.get("tolerances") or {}).items()
            },
        )
        report.checked.append(filename)
        report.metrics_compared += compared
        report.regressions.extend(regressions)
    return report
