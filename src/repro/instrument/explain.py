"""Rendering the exploration log: narrative and HTML report.

``vase explain`` replays a :class:`~repro.instrument.explog.ExplorationLog`
into a human-readable "why this architecture / why not the alternatives"
story, and optionally into a self-contained HTML exploration report
(no external assets): the search timeline from the PR-1 tracer, the
prune-reason breakdown, and an area-vs-op-amp scatter of every complete
mapping the search reached.

Both renderers are pure functions of a finished
:class:`~repro.flow.SynthesisResult` (duck-typed — this module imports
nothing from the flow, so ``repro.instrument`` stays import-cycle
free).
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence, Tuple


# -- narrative ------------------------------------------------------------


def narrate(result) -> str:
    """The exploration log as a "why this architecture" narrative.

    ``result`` is a :class:`~repro.flow.SynthesisResult` whose
    ``explog`` was recorded (``FlowOptions(explog=True)``).
    """
    log = result.explog
    if log is None or not len(log):
        return (
            "no exploration log was recorded for this run "
            "(enable with FlowOptions(explog=True) or `vase explain`)"
        )
    stats = result.mapping.statistics
    lines: List[str] = []

    lines.append(f"## Why this architecture — {result.design.name}")
    lines.append("")
    lines.append(f"chosen mapping: {result.netlist.summary()}")
    lines.append(f"estimate: {result.estimate.describe()}")
    lines.append("")

    # -- the causalization decision (one per DAE solver SFG) --------------
    for event in log.of_kind("causalization"):
        chosen = event.get("chosen_index")
        total = event.get("n_alternatives")
        lines.append(
            f"causalization: solver {chosen} of {total} enumerated "
            f"alternative(s) for SFG {event.get('sfg')!r}; states "
            f"{event.get('states')}, evaluation order {event.get('order')}"
        )
    if log.of_kind("causalization"):
        lines.append("")

    # -- the sequencing order actually used --------------------------------
    first_candidates = log.of_kind("candidates")[:1]
    for event in first_candidates:
        order = event.get("order") or []
        shown = ", ".join(
            f"{c['component']} (cone {c['cone']}, {c['opamps']} op amps)"
            for c in order[:4]
        )
        if len(order) > 4:
            shown += f", ... (+{len(order) - 4} more)"
        lines.append(
            f"sequencing ({event.get('sequencing')}): first frontier "
            f"block {event.get('root_name')!r} offered {len(order)} "
            f"candidate cone(s), tried in order: {shown}"
        )
        lines.append("")

    # -- the solution trail ------------------------------------------------
    completes = log.of_kind("complete")
    lines.append(
        f"search: {stats.nodes_visited} decision nodes visited, "
        f"{stats.complete_mappings} complete mapping(s) reached "
        f"({stats.feasible_mappings} feasible)"
    )
    for event in completes:
        area_um2 = float(event["area"]) * 1e12
        if event.get("feasible"):
            tag = "NEW BEST" if event.get("new_best") else "not better"
            lines.append(
                f"  - complete with {event['opamps']} op amps, "
                f"area {area_um2:,.0f} um^2 — feasible ({tag})"
            )
        else:
            names = ", ".join(event.get("violations") or [])
            lines.append(
                f"  - complete with {event['opamps']} op amps, "
                f"area {area_um2:,.0f} um^2 — INFEASIBLE "
                f"(violates: {names})"
            )
    lines.append("")

    # -- why not the others: the bounding rule -----------------------------
    breakdown = log.prune_breakdown()
    if stats.nodes_pruned:
        parts = []
        if breakdown.get("minarea"):
            parts.append(
                f"{breakdown['minarea']} by the paper's "
                "op-amp-count x MinArea bound"
            )
        if breakdown.get("exact"):
            parts.append(
                f"{breakdown['exact']} by the exact accumulated area"
            )
        if breakdown.get("tie"):
            parts.append(f"{breakdown['tie']} with both bounds equal")
        lines.append(
            f"why not the alternatives: {stats.nodes_pruned} partial "
            f"mapping(s) pruned ({', '.join(parts)}) — each one's lower "
            "bound already matched or exceeded the incumbent area"
        )
    else:
        lines.append(
            "why not the alternatives: nothing was pruned — every "
            "branch was explored to an outcome"
        )
    dead_ends = log.of_kind("dead_end")
    if dead_ends:
        lines.append(
            f"dead ends: {len(dead_ends)} frontier state(s) had no "
            "library cone covering the current block"
        )
    if stats.constraint_violations:
        lines.append(
            "constraints that killed complete mappings: "
            + stats.violation_summary()
        )
    if stats.truncated:
        lines.append(
            "WARNING: the search was truncated at the node budget; "
            "the chosen mapping is the best found, not proven optimal"
        )
    shares = log.of_kind("share")
    if shares:
        lines.append(
            f"hardware sharing: {len(shares)} branch(es) reused an "
            "existing identical component instead of allocating"
        )
    lines.append("")
    lines.append(
        f"runtime: {stats.runtime_s * 1e3:.1f} ms over "
        f"{len(log)} recorded decision event(s)"
    )
    return "\n".join(lines)


# -- HTML report ----------------------------------------------------------

# Palette roles (validated default palette; status colors carry state,
# sequential blue carries magnitude, text wears ink tokens only).
_CSS = """
:root { color-scheme: light dark; }
.viz-root {
  --surface-1: #fcfcfb; --surface-2: #f0efec;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --grid: #e3e2de;
  --seq: #2a78d6;
  --status-good: #008300; --status-serious: #e34948;
  --status-warn: #eb6834; --neutral: #a8a79e;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--surface-1); color: var(--text-primary);
  margin: 0 auto; max-width: 960px; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --surface-1: #1a1a19; --surface-2: #262625;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #383835;
    --seq: #3987e5;
    --status-good: #1baf7a; --status-serious: #e66767;
    --status-warn: #d95926; --neutral: #75746c;
  }
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root h2 { font-size: 15px; margin: 28px 0 8px; }
.viz-root .sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 20px; }
.viz-root .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.viz-root .tile {
  background: var(--surface-2); border-radius: 8px; padding: 10px 14px;
  min-width: 110px;
}
.viz-root .tile .v { font-size: 22px; font-weight: 600; }
.viz-root .tile .k { font-size: 11px; color: var(--text-secondary);
  text-transform: uppercase; letter-spacing: 0.04em; }
.viz-root svg { display: block; }
.viz-root svg text { font-family: inherit; }
.viz-root table { border-collapse: collapse; font-size: 12px; margin: 8px 0 0; }
.viz-root th, .viz-root td {
  text-align: left; padding: 3px 10px 3px 0;
  border-bottom: 1px solid var(--grid); }
.viz-root th { color: var(--text-secondary); font-weight: 500; }
.viz-root details { margin-top: 6px; font-size: 12px; }
.viz-root details summary { color: var(--text-secondary); cursor: pointer; }
.viz-root .legend { font-size: 12px; color: var(--text-secondary);
  display: flex; gap: 16px; margin: 4px 0 8px; }
.viz-root .legend .swatch { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px; vertical-align: -1px; }
.viz-root .warn { color: var(--status-warn); font-size: 13px; }
"""


def _svg_text(x: float, y: float, text: str, *, size: int = 11,
              anchor: str = "start", muted: bool = False) -> str:
    fill = "var(--text-secondary)" if muted else "var(--text-primary)"
    return (
        f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
        f'text-anchor="{anchor}" fill="{fill}">{html.escape(text)}</text>'
    )


def _timeline_svg(spans: Sequence[Tuple[int, str, float, float]],
                  total_s: float) -> str:
    """Horizontal span bars: (depth, name, start_s, duration_s) rows."""
    left, right, row_h = 190, 70, 22
    width = 900
    plot_w = width - left - right
    height = len(spans) * row_h + 30
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'height="{height}" role="img" '
        'aria-label="search timeline, one bar per flow phase">'
    ]
    scale = plot_w / total_s if total_s > 0 else 0.0
    # Recessive grid: quarter marks of the total runtime.
    for i in range(5):
        gx = left + plot_w * i / 4
        parts.append(
            f'<line x1="{gx:.1f}" y1="8" x2="{gx:.1f}" '
            f'y2="{height - 22}" stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(_svg_text(
            gx, height - 8, f"{total_s * 1e3 * i / 4:.1f} ms",
            size=10, anchor="middle", muted=True,
        ))
    for row, (depth, name, start_s, dur_s) in enumerate(spans):
        y = 12 + row * row_h
        x = left + start_s * scale
        w = max(dur_s * scale, 1.5)
        label = (" " * depth) + name
        parts.append(_svg_text(4, y + 10, label, muted=depth > 0))
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="12" '
            f'rx="2" fill="var(--seq)" opacity="{1.0 - 0.14 * min(depth, 3):.2f}">'
            f"<title>{html.escape(name)}: {dur_s * 1e3:.3f} ms</title></rect>"
        )
        parts.append(_svg_text(
            min(x + w + 6, width - 4), y + 10, f"{dur_s * 1e3:.2f} ms",
            size=10, muted=True,
        ))
    parts.append("</svg>")
    return "".join(parts)


def _prune_bars_svg(breakdown: Dict[str, int]) -> str:
    """Horizontal bars: prune counts per decisive bound."""
    labels = {
        "minarea": "op-amp count x MinArea (paper's rule)",
        "exact": "exact accumulated area",
        "tie": "both bounds equal",
    }
    rows = [(labels[k], breakdown.get(k, 0)) for k in ("minarea", "exact", "tie")]
    top = max((count for _l, count in rows), default=0)
    left, right, row_h, width = 260, 70, 26, 900
    plot_w = width - left - right
    height = len(rows) * row_h + 10
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'height="{height}" role="img" '
        'aria-label="prune counts by decisive bound">'
    ]
    for row, (label, count) in enumerate(rows):
        y = 6 + row * row_h
        w = (plot_w * count / top) if top else 0.0
        parts.append(_svg_text(4, y + 11, label))
        parts.append(
            f'<rect x="{left}" y="{y}" width="{max(w, 1.5):.1f}" height="14" '
            f'rx="2" fill="var(--status-warn)">'
            f"<title>{html.escape(label)}: {count} prunes</title></rect>"
        )
        parts.append(_svg_text(left + max(w, 1.5) + 6, y + 11, str(count),
                               size=10, muted=True))
    parts.append("</svg>")
    return "".join(parts)


def _scatter_svg(points: Sequence[Dict[str, object]]) -> str:
    """Area vs. op-amp scatter of every complete mapping."""
    left, right, top, bottom = 70, 20, 14, 40
    width, height = 900, 280
    plot_w, plot_h = width - left - right, height - top - bottom
    xs = [int(p["opamps"]) for p in points]
    ys = [float(p["area"]) * 1e12 for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_min, x_max = x_min - 1, x_max + 1
    if y_max == y_min:
        y_min, y_max = y_min * 0.9, y_max * 1.1 or 1.0

    def sx(v: float) -> float:
        return left + plot_w * (v - x_min) / (x_max - x_min)

    def sy(v: float) -> float:
        return top + plot_h * (1 - (v - y_min) / (y_max - y_min))

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="100%" '
        f'height="{height}" role="img" '
        'aria-label="area versus op-amp count of all complete mappings">'
    ]
    for i in range(5):
        gy = top + plot_h * i / 4
        value = y_max - (y_max - y_min) * i / 4
        parts.append(
            f'<line x1="{left}" y1="{gy:.1f}" x2="{width - right}" '
            f'y2="{gy:.1f}" stroke="var(--grid)" stroke-width="1"/>'
        )
        parts.append(_svg_text(left - 8, gy + 3, f"{value:,.0f}",
                               size=10, anchor="end", muted=True))
    for tick in sorted(set(xs)):
        tx = sx(tick)
        parts.append(_svg_text(tx, height - 22, str(tick),
                               size=10, anchor="middle", muted=True))
    parts.append(_svg_text(left - 8, 10, "area [um^2]", size=10,
                           anchor="end", muted=True))
    parts.append(_svg_text((left + width - right) / 2, height - 6,
                           "op amps in the mapping", size=10,
                           anchor="middle", muted=True))
    for p in points:
        cx, cy = sx(int(p["opamps"])), sy(float(p["area"]) * 1e12)
        feasible = bool(p.get("feasible"))
        fill = "var(--status-good)" if feasible else "var(--status-serious)"
        tip = (
            f"{p['opamps']} op amps, {float(p['area']) * 1e12:,.0f} um^2 — "
            + ("feasible" if feasible else
               "infeasible: " + ", ".join(p.get("violations") or []))
        )
        # 2px surface ring keeps overlapping markers separable; the
        # infeasible series carries a cross as its non-color encoding.
        parts.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="6" fill="{fill}" '
            f'stroke="var(--surface-1)" stroke-width="2">'
            f"<title>{html.escape(tip)}</title></circle>"
        )
        if not feasible:
            parts.append(
                f'<path d="M{cx - 2.6:.1f} {cy - 2.6:.1f} l5.2 5.2 '
                f'm0 -5.2 l-5.2 5.2" stroke="var(--surface-1)" '
                'stroke-width="1.4" fill="none"/>'
            )
        if p.get("new_best"):
            parts.append(_svg_text(cx + 10, cy + 4,
                                   f"{float(p['area']) * 1e12:,.0f}",
                                   size=10, muted=True))
    parts.append("</svg>")
    return "".join(parts)


def render_exploration_html(result, title: Optional[str] = None) -> str:
    """A self-contained HTML exploration report for one synthesis run.

    Needs ``result.explog`` (the decision events) and uses
    ``result.trace`` for the search timeline when available.
    """
    log = result.explog
    stats = result.mapping.statistics
    name = title or result.design.name
    doc: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>exploration report — {html.escape(name)}</title>",
        f"<style>{_CSS}</style></head>",
        '<body class="viz-root">',
        f"<h1>Exploration report — {html.escape(name)}</h1>",
        f'<p class="sub">chosen mapping: '
        f"{html.escape(result.netlist.summary())} &middot; "
        f"{html.escape(result.estimate.describe())}</p>",
    ]

    tiles = [
        (f"{stats.nodes_visited:,}", "nodes visited"),
        (f"{stats.nodes_pruned:,}", "pruned"),
        (f"{stats.complete_mappings}", "complete"),
        (f"{stats.feasible_mappings}", "feasible"),
        (f"{result.estimate.area_um2:,.0f}", "best area [um2]"),
        (f"{stats.runtime_s * 1e3:.1f}", "runtime [ms]"),
    ]
    doc.append('<div class="tiles">')
    for value, key in tiles:
        doc.append(
            f'<div class="tile"><div class="v">{value}</div>'
            f'<div class="k">{key}</div></div>'
        )
    doc.append("</div>")
    if stats.truncated:
        doc.append(
            '<p class="warn">search truncated at the node budget — '
            "the mapping is best-found, not proven optimal</p>"
        )

    # -- search timeline (PR-1 tracer spans) -------------------------------
    if result.trace is not None and result.trace.roots:
        spans: List[Tuple[int, str, float, float]] = []
        t0 = min(s.start_s for s in result.trace.roots)

        def walk(span, depth: int) -> None:
            spans.append((depth, span.name, span.start_s - t0,
                          span.duration_s))
            for child in span.children:
                walk(child, depth + 1)

        for root in result.trace.roots:
            walk(root, 0)
        total = max(s.start_s - t0 + s.duration_s
                    for s in result.trace.roots)
        doc.append("<h2>Search timeline</h2>")
        doc.append(_timeline_svg(spans, total))

    # -- prune-reason breakdown --------------------------------------------
    doc.append("<h2>Prune-reason breakdown</h2>")
    if log is not None and stats.nodes_pruned:
        breakdown = log.prune_breakdown()
        doc.append(_prune_bars_svg(breakdown))
        doc.append(
            '<details><summary>data table</summary><table>'
            "<tr><th>decisive bound</th><th>prunes</th></tr>"
            + "".join(
                f"<tr><td>{k}</td><td>{v}</td></tr>"
                for k, v in sorted(breakdown.items())
            )
            + "</table></details>"
        )
    else:
        doc.append(
            '<p class="sub">nothing was pruned in this run</p>'
        )

    # -- area-vs-op-amp scatter --------------------------------------------
    doc.append("<h2>Complete mappings — area vs. op amps</h2>")
    completes = log.of_kind("complete") if log is not None else []
    if completes:
        doc.append(
            '<div class="legend">'
            '<span><span class="swatch" '
            'style="background:var(--status-good)"></span>feasible</span>'
            '<span><span class="swatch" '
            'style="background:var(--status-serious)"></span>'
            "infeasible (crossed)</span></div>"
        )
        doc.append(_scatter_svg(completes))
        rows = "".join(
            "<tr><td>{}</td><td>{:,.0f}</td><td>{}</td><td>{}</td></tr>".format(
                e["opamps"], float(e["area"]) * 1e12,
                "feasible" if e.get("feasible") else "infeasible",
                html.escape(", ".join(e.get("violations") or []) or "-"),
            )
            for e in completes
        )
        doc.append(
            '<details><summary>data table</summary><table>'
            "<tr><th>op amps</th><th>area [um2]</th><th>status</th>"
            "<th>violated constraints</th></tr>" + rows
            + "</table></details>"
        )
    else:
        doc.append('<p class="sub">no complete mappings recorded</p>')

    # -- narrative ---------------------------------------------------------
    doc.append("<h2>Narrative</h2>")
    doc.append(
        "<pre style=\"font-size:12px; white-space:pre-wrap\">"
        + html.escape(narrate(result)) + "</pre>"
    )
    if log is not None:
        doc.append(
            f'<p class="sub">{len(log)} exploration events; '
            "prune/complete events carry bounds and violations "
            "(see the JSONL log)</p>"
        )
    doc.append("</body></html>")
    return "\n".join(doc)


def events_summary(log) -> Dict[str, int]:
    """Event counts by kind (for quick CLI sanity output)."""
    counts: Dict[str, int] = {}
    for event in log:
        kind = str(event["event"])
        counts[kind] = counts.get(kind, 0) + 1
    return counts


__all__ = ["narrate", "render_exploration_html", "events_summary"]
