"""Hierarchical span tracing for the synthesis flow.

Stages of the flow mark their work with::

    with trace_phase("map") as span:
        ...
        span.annotate(nodes_visited=stats.nodes_visited)

``trace_phase`` is safe to leave in hot code: while no tracer is active
it returns one shared no-op span object and never allocates, so the
disabled cost is a single global load plus an ``is None`` test.  When a
:class:`Tracer` is active (``tracing()`` context manager,
``enable_tracing()``, or ``FlowOptions.trace``) every phase becomes a
:class:`Span` timed with the monotonic clock, nested under the
innermost open span.

A finished tracer renders two ways:

* :meth:`Tracer.format_tree` — a human-readable timing tree with the
  span annotations inline;
* :meth:`Tracer.chrome_trace` / :meth:`Tracer.chrome_json` — the Chrome
  ``trace_event`` format (complete ``"ph": "X"`` events, microsecond
  timestamps) that ``chrome://tracing`` and Perfetto load directly.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.instrument.events import CATEGORY_SPAN, active_bus


@dataclass
class Span:
    """One timed phase, possibly with nested child phases."""

    name: str
    start_s: float
    duration_s: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def self_time_s(self) -> float:
        """Time spent in this span outside any child span."""
        return max(0.0, self.duration_s - sum(c.duration_s for c in self.children))


class _NullSpan:
    """The shared span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager that closes its span on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> "_LiveSpan":
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._close(self._span)
        return False

    def annotate(self, **attrs) -> None:
        """Attach key/value facts (counters, sizes) to the span."""
        self._span.attrs.update(attrs)


class Tracer:
    """Collects a tree of timed spans."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attrs) -> _LiveSpan:
        span = Span(name=name, start_s=self._clock(), attrs=dict(attrs))
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        bus = active_bus()
        if bus is not None:
            bus.publish(
                CATEGORY_SPAN,
                {"phase": "open", "name": name, "depth": len(self._stack)},
            )
        return _LiveSpan(self, span)

    def _close(self, span: Span) -> None:
        now = self._clock()
        # An exception may have skipped inner __exit__ calls; close any
        # dangling children so the tree stays consistent.
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            dangling.duration_s = now - dangling.start_s
            self._publish_close(dangling)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        span.duration_s = now - span.start_s
        self._publish_close(span)

    def _publish_close(self, span: Span) -> None:
        bus = active_bus()
        if bus is not None:
            bus.publish(
                CATEGORY_SPAN,
                {
                    "phase": "close",
                    "name": span.name,
                    "duration_s": span.duration_s,
                    "attrs": {
                        k: _jsonable(v) for k, v in span.attrs.items()
                    },
                },
            )

    # -- rendering ---------------------------------------------------------------

    def format_tree(self) -> str:
        """Indented per-phase timing tree with annotations inline."""
        lines: List[str] = []

        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:g}"
            return str(value)

        def walk(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
            branch = "" if is_root else ("`- " if is_last else "|- ")
            attrs = ""
            if span.attrs:
                attrs = "  [" + ", ".join(
                    f"{k}={fmt(v)}" for k, v in span.attrs.items()
                ) + "]"
            lines.append(
                f"{prefix}{branch}{span.name:<24} "
                f"{span.duration_s * 1e3:>9.3f} ms{attrs}"
            )
            child_prefix = prefix if is_root else prefix + ("   " if is_last else "|  ")
            for i, child in enumerate(span.children):
                walk(child, child_prefix, i == len(span.children) - 1, False)

        for root in self.roots:
            walk(root, "", True, True)
        return "\n".join(lines)

    def chrome_trace(self, metadata: Optional[Dict[str, object]] = None) -> Dict:
        """The trace as a Chrome ``trace_event`` JSON object."""
        if self.roots:
            t0 = min(span.start_s for span in self.roots)
        else:
            t0 = 0.0
        events: List[Dict[str, object]] = []

        def emit(span: Span) -> None:
            events.append(
                {
                    "name": span.name,
                    "cat": "vase",
                    "ph": "X",
                    "pid": 1,
                    "tid": 1,
                    "ts": (span.start_s - t0) * 1e6,
                    "dur": span.duration_s * 1e6,
                    "args": {k: _jsonable(v) for k, v in span.attrs.items()},
                }
            )
            for child in span.children:
                emit(child)

        for root in self.roots:
            emit(root)
        trace: Dict[str, object] = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
        }
        if metadata:
            trace["otherData"] = {k: _jsonable(v) for k, v in metadata.items()}
        return trace

    def chrome_json(self, metadata: Optional[Dict[str, object]] = None) -> str:
        return json.dumps(self.chrome_trace(metadata=metadata), indent=2)

    # -- queries -----------------------------------------------------------------

    def find(self, name: str) -> List[Span]:
        """All spans with ``name``, depth-first."""
        out: List[Span] = []

        def walk(span: Span) -> None:
            if span.name == name:
                out.append(span)
            for child in span.children:
                walk(child)

        for root in self.roots:
            walk(root)
        return out


def _jsonable(value: object) -> object:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


# -- the active tracer (per thread) ---------------------------------------------
#
# Thread-local, not a module global: a Tracer's span stack is not
# thread-safe, and the pipeline's worker pools (explore_solvers,
# ``vase batch --jobs``) run flow stages on worker threads.  Workers
# simply see no active tracer (their spans are no-ops); the thread
# that enabled tracing keeps its tree exactly as before.

_TLS = threading.local()


def _active() -> Optional[Tracer]:
    return getattr(_TLS, "tracer", None)


def trace_phase(name: str, **attrs):
    """Open a span on this thread's active tracer, or a no-op."""
    tracer = _active()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def active_tracer() -> Optional[Tracer]:
    return _active()


def enable_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as this thread's tracer."""
    _TLS.tracer = tracer or Tracer()
    return _TLS.tracer


def disable_tracing() -> Optional[Tracer]:
    """Deactivate tracing; returns the tracer that was active."""
    tracer = _active()
    _TLS.tracer = None
    return tracer


class tracing:
    """Context manager: activate a tracer, restoring the previous one.

    >>> with tracing() as tracer:
    ...     with trace_phase("work"):
    ...         pass
    >>> print(tracer.format_tree())
    """

    def __init__(self, tracer: Optional[Tracer] = None):
        self._tracer = tracer or Tracer()
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = _active()
        _TLS.tracer = self._tracer
        return self._tracer

    def __exit__(self, *exc) -> bool:
        _TLS.tracer = self._previous
        return False
