"""Prometheus text exposition rendering for metrics snapshots.

:func:`render_prometheus` turns any :meth:`MetricsRegistry.snapshot`
dict into the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ a
Prometheus server scrapes: counters become ``<ns>_<name>_total``
counter families, gauges become gauge families, and histograms are
rendered as summaries with ``quantile="0.5"``/``quantile="0.95"``
series plus the conventional ``_sum``/``_count`` children.  Dotted
registry names map to underscore-separated Prometheus names under the
``vase_`` namespace (``mapper.nodes_visited`` →
``vase_mapper_nodes_visited_total``).

:func:`validate_exposition` is a dependency-free, regex-level lint of
the same format (used by the CI artifact check): it verifies comment
lines, sample-line syntax, metric-name legality, that ``TYPE``
declarations precede their samples, and that no family is declared
twice.  It is not a full openmetrics parser — it catches the mistakes
a renderer bug would actually produce.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List

DEFAULT_NAMESPACE = "vase"

#: quantiles rendered for each histogram summary
SUMMARY_QUANTILES = (0.5, 0.95)

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, namespace: str = DEFAULT_NAMESPACE) -> str:
    """Map a dotted registry name to a legal Prometheus metric name."""
    flat = _SANITIZE.sub("_", name.replace(".", "_"))
    if namespace:
        flat = f"{namespace}_{flat}"
    if not _NAME_OK.match(flat):
        flat = "_" + flat
    return flat


def _format_value(value) -> str:
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(
    snapshot: Dict[str, Dict[str, object]],
    namespace: str = DEFAULT_NAMESPACE,
) -> str:
    """Render a metrics snapshot in Prometheus text exposition format.

    ``snapshot`` is the :meth:`MetricsRegistry.snapshot` shape:
    ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``.
    Returns the full scrape body, newline-terminated.
    """
    lines: List[str] = []

    for name in sorted(snapshot.get("counters", {})):
        value = snapshot["counters"][name]
        family = metric_name(name, namespace) + "_total"
        lines.append(f"# HELP {family} Counter {name!r} from the vase registry.")
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_format_value(value)}")

    for name in sorted(snapshot.get("gauges", {})):
        value = snapshot["gauges"][name]
        family = metric_name(name, namespace)
        lines.append(f"# HELP {family} Gauge {name!r} from the vase registry.")
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_format_value(value)}")

    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        family = metric_name(name, namespace)
        lines.append(
            f"# HELP {family} Histogram {name!r} from the vase registry."
        )
        lines.append(f"# TYPE {family} summary")
        for quantile in SUMMARY_QUANTILES:
            key = f"p{int(quantile * 100)}"
            value = data.get(key)
            if value is None:
                continue
            lines.append(
                f'{family}{{quantile="{quantile}"}} {_format_value(value)}'
            )
        lines.append(f"{family}_sum {_format_value(data.get('sum', 0.0))}")
        lines.append(f"{family}_count {_format_value(data.get('count', 0))}")

    return "\n".join(lines) + "\n" if lines else ""


def render_family(
    name: str,
    mtype: str,
    help_text: str,
    samples,
) -> str:
    """Render one metric family with optional labels.

    ``samples`` is an iterable of ``(labels_dict, value)`` pairs; pass
    ``{}`` for an unlabeled sample.  Used by ``vase serve`` for the
    server-level gauges and the ``vase_serve_jobs_done_total`` counter
    (labeled by outcome), which the dotted-registry renderer above
    cannot express.  The output concatenates cleanly after
    :func:`render_prometheus` as long as the family name is fresh.
    """
    if not _NAME_OK.match(name):
        raise ValueError(f"illegal Prometheus metric name: {name!r}")
    lines = [f"# HELP {name} {help_text}", f"# TYPE {name} {mtype}"]
    for labels, value in samples:
        if labels:
            rendered = ",".join(
                f'{key}="{labels[key]}"' for key in sorted(labels)
            )
            lines.append(f"{name}{{{rendered}}} {_format_value(value)}")
        else:
            lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


# -- validation ---------------------------------------------------------------

_COMMENT = re.compile(
    r"^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)( .*)?$"
)
_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\n]*\""  # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\n]*\")*\})?"  # more labels
    r" (NaN|[+-]?Inf|[+-]?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?)"  # value
    r"( [0-9]+)?$"  # optional timestamp
)
_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")


def _family_of(sample_name: str) -> str:
    for suffix in ("_sum", "_count", "_bucket", "_total"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def validate_exposition(text: str) -> List[str]:
    """Regex-level lint of Prometheus text exposition format.

    Returns a list of ``"line N: problem"`` strings — empty when the
    document is clean.
    """
    errors: List[str] = []
    typed: Dict[str, str] = {}
    seen_samples: set = set()
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            match = _COMMENT.match(line)
            if not match:
                errors.append(
                    f"line {number}: malformed comment (expected "
                    f"'# HELP name ...' or '# TYPE name type')"
                )
                continue
            keyword, family = match.group(1), match.group(2)
            if keyword == "TYPE":
                declared = (match.group(3) or "").strip()
                if declared not in _TYPES:
                    errors.append(
                        f"line {number}: unknown TYPE {declared!r} "
                        f"for {family}"
                    )
                if family in typed:
                    errors.append(
                        f"line {number}: duplicate TYPE for {family}"
                    )
                if family in seen_samples:
                    errors.append(
                        f"line {number}: TYPE for {family} after its samples"
                    )
                typed[family] = declared
            continue
        match = _SAMPLE.match(line)
        if not match:
            errors.append(f"line {number}: malformed sample line: {line!r}")
            continue
        seen_samples.add(_family_of(match.group(1)))
    return errors
