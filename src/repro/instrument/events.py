"""The unified telemetry bus: one event stream for the whole flow.

PRs 1-3 grew three observability channels — trace spans, the metrics
registry, the exploration log — plus recovery events, cache counters
and batch buckets, each with its own shape and its own output path.
This module gives them a single spine: a thread-safe publish/subscribe
**bus** carrying typed, JSON-ready :class:`TelemetryEvent` records.
Every existing channel publishes into it (tracer span open/close,
metric deltas, explog decisions, recovery-ladder attempts, artifact
cache hits/misses/stores, per-file batch lifecycle), and subscribers
consume the one merged stream:

* :class:`JsonlSink` — one JSON line per event
  (``FlowOptions.telemetry`` / ``vase synth --events FILE``);
* :class:`RingBuffer` — a bounded in-memory buffer for programmatic
  consumers (``vase serve`` replays per-job buffers over SSE);
* :class:`ProgressRenderer` — a live TTY view of batch lifecycle
  events (``vase batch --progress``).

Event identity:

* ``run_id`` — one id per synthesis (or batch) run, established with
  :func:`run_scope`; worker threads inherit the id through the thunks
  the pool runs, so a parallel run still tags every event with the run
  that caused it;
* ``seq`` — strictly monotonic *per run id*, assigned under the bus
  lock, so subscribers see each run's events in a total order with no
  gaps and no duplicates;
* ``ts`` — wall-clock epoch seconds, correlatable with the explog's
  ``ts`` field and the ledger records;
* ``category`` — one of :data:`CATEGORIES`;
* ``payload`` — the category-specific dict.

Activation mirrors the tracer/explog pattern but is process-global
(the whole point is merging events from many threads): hot call sites
guard every publish with ``active_bus() is None``, so the disabled
path costs one module-global load and nothing else — no events, no
allocations.  Subscriber callbacks run under the bus lock (delivery
order therefore matches ``seq`` order); they must be fast and must not
block.  A subscriber that raises is counted (``TelemetryBus.errors``)
and skipped, never allowed to kill a synthesis run.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, IO, List, Optional, Union

#: Event categories, the ``category`` field of every event.
CATEGORY_SPAN = "span"          # tracer span open/close
CATEGORY_METRIC = "metric"      # metrics-registry deltas
CATEGORY_EXPLOG = "explog"      # exploration-log decisions
CATEGORY_RECOVERY = "recovery"  # recovery-ladder attempts
CATEGORY_CACHE = "cache"        # artifact-cache hit/miss/store/evict
CATEGORY_LIFECYCLE = "lifecycle"  # run / per-file batch lifecycle
CATEGORY_CANCELLED = "cancelled"  # cancellation requests and outcomes
CATEGORY_RETRY = "retry"          # executor transient-failure retries

CATEGORIES = (
    CATEGORY_SPAN,
    CATEGORY_METRIC,
    CATEGORY_EXPLOG,
    CATEGORY_RECOVERY,
    CATEGORY_CACHE,
    CATEGORY_LIFECYCLE,
    CATEGORY_CANCELLED,
    CATEGORY_RETRY,
)


@dataclass(frozen=True)
class TelemetryEvent:
    """One record on the bus: who, when, what kind, and the payload."""

    run_id: str
    #: strictly monotonic within ``run_id``, assigned by the bus
    seq: int
    #: wall-clock epoch seconds at publish time
    ts: float
    category: str
    payload: Dict[str, object]

    def as_dict(self) -> Dict[str, object]:
        return {
            "run_id": self.run_id,
            "seq": self.seq,
            "ts": self.ts,
            "category": self.category,
            "payload": dict(self.payload),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), default=str)


def new_run_id() -> str:
    """A fresh run id (12 hex chars — short enough to read, unique
    enough for a ledger)."""
    return uuid.uuid4().hex[:12]


# -- the current run id (per thread, propagated into pools by callers) ------

_RUN_TLS = threading.local()


def current_run_id() -> Optional[str]:
    """The run id established by the innermost :func:`run_scope`."""
    return getattr(_RUN_TLS, "run_id", None)


class run_scope:
    """Context manager: tag this thread's events with ``run_id``.

    Nested scopes restore the previous id on exit.  Worker-pool code
    captures ``current_run_id()`` on the submitting thread and enters a
    ``run_scope`` inside each thunk, so events published from workers
    carry the submitting run's id.
    """

    def __init__(self, run_id: Optional[str]):
        self.run_id = run_id
        self._previous: Optional[str] = None

    def __enter__(self) -> "run_scope":
        self._previous = current_run_id()
        _RUN_TLS.run_id = self.run_id
        return self

    def __exit__(self, *exc) -> bool:
        _RUN_TLS.run_id = self._previous
        return False


#: run id used for events published outside any :func:`run_scope`
UNSCOPED_RUN = "-"


class TelemetryBus:
    """Thread-safe publish/subscribe hub for :class:`TelemetryEvent`s.

    One lock covers sequence assignment *and* subscriber dispatch, so
    every subscriber observes each run's events in ``seq`` order.  The
    lock is re-entrant: a subscriber may itself publish (e.g. a metric
    incremented from inside a sink) without deadlocking.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._subscribers: List[Callable[[TelemetryEvent], None]] = []
        self._seqs: Dict[str, int] = {}
        #: events published, per category (under the lock)
        self.counts: Dict[str, int] = {}
        #: subscriber callbacks that raised (events are never lost to
        #: the *other* subscribers)
        self.errors: int = 0

    # -- wiring ------------------------------------------------------------

    def subscribe(
        self, subscriber: Callable[[TelemetryEvent], None]
    ) -> Callable[[TelemetryEvent], None]:
        """Register ``subscriber``; returns it (decorator-friendly)."""
        with self._lock:
            self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(
        self, subscriber: Callable[[TelemetryEvent], None]
    ) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

    # -- publishing (hot path while a bus is active) -----------------------

    def publish(
        self,
        category: str,
        payload: Dict[str, object],
        run_id: Optional[str] = None,
    ) -> TelemetryEvent:
        """Emit one event; returns the published record.

        ``run_id`` defaults to this thread's :func:`current_run_id`
        (:data:`UNSCOPED_RUN` when none is established).
        """
        rid = run_id or current_run_id() or UNSCOPED_RUN
        with self._lock:
            seq = self._seqs.get(rid, 0)
            self._seqs[rid] = seq + 1
            event = TelemetryEvent(
                run_id=rid,
                seq=seq,
                ts=time.time(),
                category=category,
                payload=payload,
            )
            self.counts[category] = self.counts.get(category, 0) + 1
            for subscriber in self._subscribers:
                try:
                    subscriber(event)
                except Exception:  # noqa: BLE001 - never kill the flow
                    self.errors += 1
                    self._count_subscriber_error()
        return event

    @staticmethod
    def _count_subscriber_error() -> None:
        """Mirror a swallowed subscriber exception into the metrics
        registry so a broken sink (e.g. a dead SSE client) is visible.

        ``publish=False`` keeps the increment off the bus: publishing
        from inside dispatch would re-enter the failing subscriber and
        recurse without bound.
        """
        from repro.instrument.metrics import metrics

        metrics().inc("telemetry.subscriber_errors", publish=False)

    # -- introspection ------------------------------------------------------

    def published(self) -> int:
        """Total events published across all categories."""
        with self._lock:
            return sum(self.counts.values())

    def last_seq(self, run_id: str) -> int:
        """Events published so far for ``run_id`` (== next seq)."""
        with self._lock:
            return self._seqs.get(run_id, 0)

    def stats(self) -> Dict[str, object]:
        """Plain-data health summary: published counts, runs, errors."""
        with self._lock:
            return {
                "published": sum(self.counts.values()),
                "counts": dict(sorted(self.counts.items())),
                "runs": len(self._seqs),
                "subscribers": len(self._subscribers),
                "subscriber_errors": self.errors,
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"<TelemetryBus subscribers={len(self._subscribers)} "
                f"published={sum(self.counts.values())} "
                f"runs={len(self._seqs)} errors={self.errors}>"
            )


# -- subscribers -------------------------------------------------------------


class JsonlSink:
    """Write every event as one JSON line (file path or open stream).

    Thread-safe; when constructed from a path the file is opened
    immediately (truncating) and :meth:`close` — or use as a context
    manager — flushes and closes it.

    Flush policy: the default ``flush_every=1`` flushes after every
    event, so the file can be tailed live and tests can read it
    mid-run.  Hot runs publish thousands of events, where a flush (a
    syscall) per event dominates the sink cost; ``flush_every=N``
    batches the flushes, and ``flush_interval_s`` bounds how stale the
    file can get regardless of the event rate.  ``flush_every=None``
    with no interval leaves flushing to the stream's own buffering
    (everything is flushed on :meth:`close`).
    """

    def __init__(
        self,
        target: Union[str, IO[str]],
        flush_every: Optional[int] = 1,
        flush_interval_s: Optional[float] = None,
    ):
        if flush_every is not None and flush_every < 1:
            raise ValueError("flush_every must be >= 1 (or None)")
        self._lock = threading.Lock()
        if isinstance(target, str):
            self._stream: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
        else:
            self._stream = target
            self._owns = False
        self.written = 0
        self.flush_every = flush_every
        self.flush_interval_s = flush_interval_s
        #: flush() calls actually issued (tests and benchmarks)
        self.flushes = 0
        self._pending = 0
        self._last_flush = time.monotonic()

    def __call__(self, event: TelemetryEvent) -> None:
        line = event.to_json()
        with self._lock:
            self._stream.write(line + "\n")
            self.written += 1
            self._pending += 1
            if self._should_flush():
                self._flush_locked()

    def _should_flush(self) -> bool:
        if self.flush_every is not None and self._pending >= self.flush_every:
            return True
        if (
            self.flush_interval_s is not None
            and time.monotonic() - self._last_flush >= self.flush_interval_s
        ):
            return True
        return False

    def _flush_locked(self) -> None:
        self._stream.flush()
        self.flushes += 1
        self._pending = 0
        self._last_flush = time.monotonic()

    def close(self) -> None:
        with self._lock:
            if self._pending:
                self._flush_locked()
            else:
                self._stream.flush()
            if self._owns:
                self._stream.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class RingBuffer:
    """Bounded in-memory subscriber: keeps the newest ``capacity``
    events.

    The programmatic consumer surface: ``vase serve`` keeps one per
    job for SSE replay, tests assert on it.  ``deque`` appends are
    atomic, so no extra lock is needed on the publish path.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        #: events pushed out of the buffer by newer ones
        self.dropped = 0

    def __call__(self, event: TelemetryEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[TelemetryEvent]:
        """A snapshot of the buffered events, oldest first."""
        return list(self._events)

    def drain(self) -> List[TelemetryEvent]:
        """Pop and return everything buffered, oldest first."""
        out: List[TelemetryEvent] = []
        while True:
            try:
                out.append(self._events.popleft())
            except IndexError:
                return out


@dataclass
class ProgressCounts:
    """Running per-status tallies of a batch run."""

    queued: int = 0
    done: int = 0
    ok: int = 0
    degraded: int = 0
    failed: int = 0
    cancelled: int = 0


class ProgressRenderer:
    """Live TTY view of batch lifecycle events (``--progress``).

    Subscribes to the bus and prints one line per finished file with
    running ok/degraded/failed counts — driven entirely by bus events,
    not by ad-hoc prints in the batch runner.
    """

    #: lifecycle phases that terminate one file
    TERMINAL = ("ok", "degraded", "failed", "cancelled")

    def __init__(self, stream: Optional[IO[str]] = None):
        import sys

        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()
        self.counts = ProgressCounts()

    def __call__(self, event: TelemetryEvent) -> None:
        if event.category != CATEGORY_LIFECYCLE:
            return
        payload = event.payload
        if payload.get("kind") != "file":
            return
        phase = payload.get("phase")
        with self._lock:
            if phase == "queued":
                self.counts.queued += 1
                return
            if phase not in self.TERMINAL:
                return
            self.counts.done += 1
            setattr(
                self.counts, str(phase),
                getattr(self.counts, str(phase)) + 1,
            )
            total = self.counts.queued or self.counts.done
            self._stream.write(
                f"[{self.counts.done}/{total}] {str(phase).upper():<9}"
                f" {payload.get('file', '?')}"
                f"  (ok {self.counts.ok}, degraded {self.counts.degraded},"
                f" failed {self.counts.failed})\n"
            )
            self._stream.flush()


# -- the active bus (process-global) -----------------------------------------
#
# Unlike the tracer and the explog, the bus is deliberately *not*
# thread-local: its purpose is to merge events from every thread of a
# run (worker pools included) into one stream.  Reads of the module
# global are atomic; installation is rare and lock-protected.

_ACTIVE: Optional[TelemetryBus] = None
_ACTIVE_LOCK = threading.Lock()


def active_bus() -> Optional[TelemetryBus]:
    """The process-wide bus, or ``None`` while telemetry is off.

    Hot call sites call this once per publish and guard with
    ``is None`` — the whole disabled cost.
    """
    return _ACTIVE


def enable_telemetry(bus: Optional[TelemetryBus] = None) -> TelemetryBus:
    """Install ``bus`` (or a fresh one) as the process-wide bus."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = bus if bus is not None else TelemetryBus()
        return _ACTIVE


def disable_telemetry() -> Optional[TelemetryBus]:
    """Deactivate telemetry; returns the bus that was active."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        bus = _ACTIVE
        _ACTIVE = None
        return bus


class telemetry:
    """Context manager: activate a bus, restoring the previous one.

    >>> with telemetry() as bus:
    ...     bus.subscribe(ring := RingBuffer())
    ...     synthesize(source)
    >>> ring.events()
    """

    def __init__(self, bus: Optional[TelemetryBus] = None):
        self._bus = bus if bus is not None else TelemetryBus()
        self._previous: Optional[TelemetryBus] = None

    def __enter__(self) -> TelemetryBus:
        global _ACTIVE
        with _ACTIVE_LOCK:
            self._previous = _ACTIVE
            _ACTIVE = self._bus
        return self._bus

    def __exit__(self, *exc) -> bool:
        global _ACTIVE
        with _ACTIVE_LOCK:
            _ACTIVE = self._previous
        return False
