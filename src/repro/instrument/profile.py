"""Repeat-run profiling of the synthesis flow (``vase profile``).

Runs the complete flow several times with tracing enabled, aggregates
the per-phase wall times (min/mean/max over the repeats, keyed by the
span's path in the tree) and snapshots the metrics registry, giving a
quick answer to "where does a synthesis run spend its time".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.instrument.metrics import metrics
from repro.instrument.tracer import Span, Tracer, tracing


@dataclass
class PhaseProfile:
    """Aggregated timing of one phase across repeats."""

    path: Tuple[str, ...]
    calls: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    @property
    def name(self) -> str:
        return self.path[-1]

    @property
    def depth(self) -> int:
        return len(self.path) - 1

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


@dataclass
class ProfileReport:
    """Everything ``vase profile`` reports for one design."""

    design: str
    repeat: int
    phases: List[PhaseProfile]
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: the tracer of the last repeat, for Chrome-JSON export
    last_trace: Optional[Tracer] = None

    def describe(self) -> str:
        lines = [
            f"profile of {self.design!r} over {self.repeat} run(s):",
            "",
            f"{'phase':<34} {'calls':>6} {'mean':>10} {'min':>10} {'max':>10}",
        ]
        for phase in self.phases:
            label = "  " * phase.depth + phase.name
            lines.append(
                f"{label:<34} {phase.calls:>6d} "
                f"{phase.mean_s * 1e3:>8.3f} ms "
                f"{phase.min_s * 1e3:>7.3f} ms "
                f"{phase.max_s * 1e3:>7.3f} ms"
            )
        counters = self.metrics.get("counters", {})
        if counters:
            lines.append("")
            lines.append(f"{'metric (cumulative over repeats)':<40} {'value':>12}")
            for name, value in counters.items():
                lines.append(f"{name:<40} {value:>12g}")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "design": self.design,
                "repeat": self.repeat,
                "phases": [
                    {
                        "path": list(phase.path),
                        "calls": phase.calls,
                        "mean_s": phase.mean_s,
                        "min_s": phase.min_s,
                        "max_s": phase.max_s,
                        "total_s": phase.total_s,
                    }
                    for phase in self.phases
                ],
                "metrics": self.metrics,
            },
            indent=2,
        )


def _collect(span: Span, path: Tuple[str, ...], into: Dict[Tuple[str, ...], PhaseProfile], order: List[Tuple[str, ...]]) -> None:
    key = path + (span.name,)
    profile = into.get(key)
    if profile is None:
        profile = into[key] = PhaseProfile(path=key)
        order.append(key)
    profile.calls += 1
    profile.total_s += span.duration_s
    profile.min_s = min(profile.min_s, span.duration_s)
    profile.max_s = max(profile.max_s, span.duration_s)
    for child in span.children:
        _collect(child, key, into, order)


def aggregate_spans(roots: List[Span]) -> List[PhaseProfile]:
    """Aggregate a span forest into per-phase profiles (by tree path)."""
    profiles: Dict[Tuple[str, ...], PhaseProfile] = {}
    order: List[Tuple[str, ...]] = []
    for root in roots:
        _collect(root, (), profiles, order)
    return [profiles[key] for key in order]


def profile_flow(
    source: str,
    entity_name: Optional[str] = None,
    repeat: int = 3,
    options=None,
    library=None,
) -> ProfileReport:
    """Run the flow ``repeat`` times under tracing and aggregate."""
    from repro.flow import FlowOptions, synthesize

    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    registry = metrics()
    before = registry.snapshot()["counters"]

    profiles: Dict[Tuple[str, ...], PhaseProfile] = {}
    order: List[Tuple[str, ...]] = []
    design_name = "?"
    last_trace: Optional[Tracer] = None
    for _ in range(repeat):
        with tracing() as tracer:
            result = synthesize(
                source,
                entity_name=entity_name,
                library=library,
                options=options or FlowOptions(),
            )
        design_name = result.design.name
        last_trace = tracer
        for root in tracer.roots:
            _collect(root, (), profiles, order)

    after = registry.snapshot()["counters"]
    delta = {
        name: value - before.get(name, 0)
        for name, value in after.items()
        if value != before.get(name, 0)
    }
    return ProfileReport(
        design=design_name,
        repeat=repeat,
        phases=[profiles[key] for key in order],
        metrics={"counters": delta},
        last_trace=last_trace,
    )
