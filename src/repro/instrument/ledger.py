"""The persistent run ledger: one append-only record per run.

Every ``synthesize``/``batch`` run (when a ledger is wired in —
``FlowOptions.ledger``, or the CLI default ``.vase-ledger/``) appends
one JSON line to ``ledger.jsonl``: run id, wall-clock timestamp,
source fingerprint, options digest, outcome bucket
(``ok``/``degraded``/``failed``), key metrics, cache counters and
durations.  The ledger is the cross-run memory the per-run channels
lack: ``vase history`` lists recent runs (filterable by outcome and
source), ``vase stats`` aggregates the whole file (degradation rate,
cache hit rate, duration mean/p50/p95 overall and per phase), and the
fuzz/learned-heuristic direction gets a durable corpus of per-run
telemetry to learn from.

The file format is deliberately dumb — append-only JSON Lines, one
record per line, corrupt lines skipped (and counted) on read — so
concurrent appends from different processes stay safe on POSIX
(single ``write`` of one line in append mode) and a truncated final
line never poisons the history.

Resolution order for the CLI default (:func:`resolve_ledger`):
an explicit ``--ledger PATH`` flag, then the ``VASE_LEDGER``
environment variable (``off``/``0``/``none`` disables), then
``.vase-ledger/ledger.jsonl`` in the working directory.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: default ledger location (a directory; the file inside is fixed)
DEFAULT_LEDGER_DIR = ".vase-ledger"
LEDGER_FILENAME = "ledger.jsonl"

#: outcome buckets (shared with the batch runner's vocabulary)
OUTCOME_OK = "ok"
OUTCOME_DEGRADED = "degraded"
OUTCOME_FAILED = "failed"
OUTCOME_CANCELLED = "cancelled"
#: the always-reported outcome buckets; ``cancelled`` only appears in
#: summaries when cancelled runs actually exist
OUTCOMES = (OUTCOME_OK, OUTCOME_DEGRADED, OUTCOME_FAILED)
ALL_OUTCOMES = OUTCOMES + (OUTCOME_CANCELLED,)


@dataclass
class LedgerRecord:
    """One run, as remembered across processes."""

    run_id: str
    #: ``synth`` or ``batch``
    kind: str
    #: wall-clock epoch seconds at record time
    ts: float
    #: what was synthesized (file name, app name, or batch root)
    source: str
    #: content fingerprint of the source (text or file list)
    source_fp: str
    #: fingerprint of the options subtrees that shape the result
    options_fp: str
    #: ``ok`` / ``degraded`` / ``failed``
    outcome: str
    degraded: bool = False
    #: key result metrics (area, opamps, nodes_visited, ... or batch
    #: bucket counts)
    metrics: Dict[str, object] = field(default_factory=dict)
    #: artifact-cache counters of the run (hits/misses/...)
    cache: Dict[str, object] = field(default_factory=dict)
    #: wall-clock durations: always ``total_s``; per-phase keys when a
    #: tracer was active
    durations: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "ts": self.ts,
            "source": self.source,
            "source_fp": self.source_fp,
            "options_fp": self.options_fp,
            "outcome": self.outcome,
            "degraded": self.degraded,
            "metrics": dict(self.metrics),
            "cache": dict(self.cache),
            "durations": dict(self.durations),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LedgerRecord":
        return cls(
            run_id=str(data.get("run_id", "?")),
            kind=str(data.get("kind", "synth")),
            ts=float(data.get("ts", 0.0)),  # type: ignore[arg-type]
            source=str(data.get("source", "?")),
            source_fp=str(data.get("source_fp", "")),
            options_fp=str(data.get("options_fp", "")),
            outcome=str(data.get("outcome", OUTCOME_FAILED)),
            degraded=bool(data.get("degraded", False)),
            metrics=dict(data.get("metrics") or {}),  # type: ignore[call-overload]
            cache=dict(data.get("cache") or {}),  # type: ignore[call-overload]
            durations={
                str(k): float(v)  # type: ignore[arg-type]
                for k, v in (data.get("durations") or {}).items()  # type: ignore[union-attr]
            },
        )

    def describe(self) -> str:
        stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(self.ts))
        text = (
            f"{self.run_id}  {stamp}  {self.kind:<5} "
            f"{self.outcome.upper():<9} {self.source}"
        )
        total = self.durations.get("total_s")
        if total is not None:
            text += f"  ({total * 1e3:.1f} ms)"
        return text


class RunLedger:
    """Append-only JSONL store of :class:`LedgerRecord`s."""

    def __init__(self, path):
        target = Path(path)
        if target.suffix != ".jsonl":
            target = target / LEDGER_FILENAME
        self.path = target
        self._lock = threading.Lock()
        #: corrupt lines skipped by the last :meth:`records` call
        self.skipped = 0

    def append(self, record: LedgerRecord) -> None:
        """Append one record (creating the ledger on first use).

        The whole line goes down in a single ``os.write`` on an
        ``O_APPEND`` file descriptor: POSIX makes such writes atomic
        with respect to other appenders, so concurrent server jobs —
        or two ``vase batch`` processes sharing one ledger — can never
        interleave bytes mid-line.  (A buffered ``open(..., "a")``
        offers no such guarantee: the libc buffer may split one line
        across several writes.)
        """
        line = json.dumps(record.as_dict(), default=str) + "\n"
        payload = line.encode("utf-8")
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                str(self.path),
                os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                0o644,
            )
            try:
                written = os.write(fd, payload)
                if written != len(payload):  # pragma: no cover - POSIX
                    raise OSError(
                        f"short ledger write: {written}/{len(payload)} bytes"
                    )
            finally:
                os.close(fd)

    def exists(self) -> bool:
        return self.path.is_file()

    def records(self) -> List[LedgerRecord]:
        """Every readable record, oldest first (corrupt lines skipped)."""
        out: List[LedgerRecord] = []
        self.skipped = 0
        if not self.path.is_file():
            return out
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    if not isinstance(data, dict) or "run_id" not in data:
                        raise ValueError("not a ledger record")
                    out.append(LedgerRecord.from_dict(data))
                except (json.JSONDecodeError, TypeError, ValueError):
                    self.skipped += 1
        return out

    def tail(
        self,
        limit: Optional[int] = None,
        outcome: Optional[str] = None,
        source: Optional[str] = None,
    ) -> List[LedgerRecord]:
        """The most recent records, newest first, filtered.

        ``outcome`` matches the bucket exactly; ``source`` is a
        case-insensitive substring of the record's source.
        """
        records = self.records()
        if outcome is not None:
            records = [r for r in records if r.outcome == outcome]
        if source is not None:
            needle = source.lower()
            records = [r for r in records if needle in r.source.lower()]
        records.reverse()
        if limit is not None:
            records = records[:limit]
        return records


# -- record builders ----------------------------------------------------------


def options_digest(options) -> str:
    """Fingerprint of the :class:`~repro.flow.FlowOptions` subtrees
    that shape a synthesis result (runtime knobs like ``parallel``,
    ``trace`` or ``telemetry`` are deliberately excluded — the
    execution backend must never change what is produced)."""
    from repro.pipeline.fingerprint import fingerprint

    return fingerprint(
        options.compiler,
        options.mapper,
        options.constraints,
        options.interfacing,
        options.realize_fsm_controls,
        options.derive_constraints_from_annotations,
        options.optimize_vhif,
        options.recovery,
        options.explore_solvers,
    )[:16]


def source_digest(source: str) -> str:
    """Content fingerprint of one source text."""
    from repro.pipeline.fingerprint import fingerprint

    return fingerprint(source)[:16]


def phase_durations(tracer) -> Dict[str, float]:
    """Total per-phase seconds from a finished tracer (top level of
    each ``synthesize`` span)."""
    durations: Dict[str, float] = {}
    for root_name in ("synthesize",):
        for span in tracer.find(root_name):
            for child in span.children:
                durations[child.name] = (
                    durations.get(child.name, 0.0) + child.duration_s
                )
    return durations


def record_for_result(
    result,
    source: str,
    source_label: str,
    elapsed_s: float,
    options,
) -> LedgerRecord:
    """Build the ledger record of one successful ``synthesize`` run."""
    durations: Dict[str, float] = {"total_s": elapsed_s}
    if result.trace is not None:
        durations.update(phase_durations(result.trace))
    search = result.mapping.statistics
    metrics: Dict[str, object] = {
        "area_um2": round(result.estimate.area * 1e12, 3),
        "power_mw": round(result.estimate.power * 1e3, 6),
        "opamps": result.estimate.opamps,
        "nodes_visited": search.nodes_visited,
        "nodes_pruned": search.nodes_pruned,
        "feasible_mappings": search.feasible_mappings,
        "truncated": bool(search.truncated),
    }
    return LedgerRecord(
        run_id=result.run_id or "?",
        kind="synth",
        ts=time.time(),
        source=source_label,
        source_fp=source_digest(source),
        options_fp=options_digest(options),
        outcome=OUTCOME_DEGRADED if result.degraded else OUTCOME_OK,
        degraded=result.degraded,
        metrics=metrics,
        cache=dict(result.cache_stats or {}),
        durations=durations,
    )


def record_for_failure(
    run_id: str,
    source: str,
    source_label: str,
    elapsed_s: float,
    options,
    error: BaseException,
) -> LedgerRecord:
    """Build the ledger record of a ``synthesize`` run that died."""
    metrics: Dict[str, object] = {"error": str(error)}
    statistics = getattr(error, "statistics", None)
    if statistics is not None:
        metrics["nodes_visited"] = getattr(statistics, "nodes_visited", 0)
        violations = getattr(statistics, "constraint_violations", None)
        if violations:
            metrics["constraint_violations"] = dict(violations)
    return LedgerRecord(
        run_id=run_id,
        kind="synth",
        ts=time.time(),
        source=source_label,
        source_fp=source_digest(source),
        options_fp=options_digest(options),
        outcome=OUTCOME_FAILED,
        degraded=False,
        metrics=metrics,
        durations={"total_s": elapsed_s},
    )


def record_for_cancelled(
    run_id: str,
    source: str,
    source_label: str,
    elapsed_s: float,
    options,
    reason: str = "cancelled",
) -> LedgerRecord:
    """Build the ledger record of a run that was cancelled mid-flight."""
    return LedgerRecord(
        run_id=run_id,
        kind="synth",
        ts=time.time(),
        source=source_label,
        source_fp=source_digest(source),
        options_fp=options_digest(options),
        outcome=OUTCOME_CANCELLED,
        degraded=False,
        metrics={"error": str(reason)},
        durations={"total_s": elapsed_s},
    )


def record_for_batch(
    report, run_id: str, source_label: str, files, options
) -> LedgerRecord:
    """Build the ledger record of one ``batch`` run."""
    from repro.pipeline.fingerprint import fingerprint

    if report.failed:
        outcome = OUTCOME_FAILED
    elif getattr(report, "cancelled", 0):
        outcome = OUTCOME_CANCELLED
    elif report.degraded:
        outcome = OUTCOME_DEGRADED
    else:
        outcome = OUTCOME_OK
    return LedgerRecord(
        run_id=run_id,
        kind="batch",
        ts=time.time(),
        source=source_label,
        source_fp=fingerprint([str(path) for path in files])[:16],
        options_fp=options_digest(options),
        outcome=outcome,
        degraded=report.degraded > 0,
        metrics={
            "files": len(report.entries),
            "ok": report.ok,
            "degraded": report.degraded,
            "failed": report.failed,
        },
        cache=dict(report.cache or {}),
        durations={"total_s": report.elapsed_s},
    )


# -- aggregation (``vase stats``) ---------------------------------------------


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 1])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[index]


def _duration_summary(values: List[float]) -> Dict[str, float]:
    if not values:
        return {"count": 0, "mean_s": 0.0, "p50_s": 0.0, "p95_s": 0.0}
    return {
        "count": len(values),
        "mean_s": sum(values) / len(values),
        "p50_s": percentile(values, 0.50),
        "p95_s": percentile(values, 0.95),
    }


def summarize(records: List[LedgerRecord]) -> Dict[str, object]:
    """Aggregate a ledger into the ``vase stats`` payload."""
    outcomes = {name: 0 for name in OUTCOMES}
    hits = misses = 0
    totals: List[float] = []
    phases: Dict[str, List[float]] = {}
    kinds: Dict[str, int] = {}
    for record in records:
        outcomes[record.outcome] = outcomes.get(record.outcome, 0) + 1
        kinds[record.kind] = kinds.get(record.kind, 0) + 1
        hits += int(record.cache.get("hits", 0) or 0)
        misses += int(record.cache.get("misses", 0) or 0)
        for name, value in record.durations.items():
            if name == "total_s":
                totals.append(value)
            else:
                phases.setdefault(name, []).append(value)
    runs = len(records)
    usable = outcomes[OUTCOME_OK] + outcomes[OUTCOME_DEGRADED]
    return {
        "runs": runs,
        "kinds": dict(sorted(kinds.items())),
        "outcomes": outcomes,
        "degradation_rate": (
            outcomes[OUTCOME_DEGRADED] / usable if usable else 0.0
        ),
        "failure_rate": outcomes[OUTCOME_FAILED] / runs if runs else 0.0,
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / (hits + misses) if (hits + misses) else 0.0,
        },
        "durations": {
            "total": _duration_summary(totals),
            "phases": {
                name: _duration_summary(values)
                for name, values in sorted(phases.items())
            },
        },
    }


def format_stats(stats: Dict[str, object]) -> str:
    """Human-readable ``vase stats`` rendering."""
    outcomes = stats["outcomes"]  # type: ignore[index]
    cache = stats["cache"]  # type: ignore[index]
    durations = stats["durations"]  # type: ignore[index]
    lines = [
        f"runs: {stats['runs']} "  # type: ignore[index]
        + " ".join(
            f"{kind}={count}"
            for kind, count in stats["kinds"].items()  # type: ignore[union-attr]
        ),
        f"outcomes: {outcomes['ok']} ok, "  # type: ignore[index]
        f"{outcomes['degraded']} degraded, "  # type: ignore[index]
        f"{outcomes['failed']} failed"  # type: ignore[index]
        + (
            f", {outcomes[OUTCOME_CANCELLED]} cancelled"  # type: ignore[index]
            if outcomes.get(OUTCOME_CANCELLED)  # type: ignore[union-attr]
            else ""
        ),
        f"degradation rate: {stats['degradation_rate'] * 100:.1f}%",  # type: ignore[operator]
        f"failure rate: {stats['failure_rate'] * 100:.1f}%",  # type: ignore[operator]
        f"cache: {cache['hits']} hit(s), {cache['misses']} miss(es) "  # type: ignore[index]
        f"({cache['hit_rate'] * 100:.1f}% hit rate)",  # type: ignore[operator]
    ]
    total = durations["total"]  # type: ignore[index]
    lines.append(
        f"duration (total): mean {total['mean_s'] * 1e3:.1f} ms, "
        f"p50 {total['p50_s'] * 1e3:.1f} ms, "
        f"p95 {total['p95_s'] * 1e3:.1f} ms "
        f"over {total['count']} run(s)"
    )
    for name, summary in durations["phases"].items():  # type: ignore[union-attr]
        lines.append(
            f"duration ({name}): mean {summary['mean_s'] * 1e3:.1f} ms, "
            f"p50 {summary['p50_s'] * 1e3:.1f} ms, "
            f"p95 {summary['p95_s'] * 1e3:.1f} ms "
            f"over {summary['count']} run(s)"
        )
    return "\n".join(lines)


# -- CLI default resolution ---------------------------------------------------

_DISABLED_VALUES = ("", "0", "off", "none", "false")


def resolve_ledger(
    flag: Optional[str] = None, disabled: bool = False
) -> Optional[RunLedger]:
    """The ledger the CLI should write, or ``None`` when disabled.

    Precedence: ``--no-ledger`` (``disabled``), then an explicit
    ``--ledger PATH`` flag, then ``VASE_LEDGER`` (a path, or
    ``off``/``0``/``none`` to disable), then the working-directory
    default ``.vase-ledger/ledger.jsonl``.
    """
    if disabled:
        return None
    if flag:
        return RunLedger(flag)
    configured = os.environ.get("VASE_LEDGER")
    if configured is not None:
        if configured.lower() in _DISABLED_VALUES:
            return None
        return RunLedger(configured)
    return RunLedger(DEFAULT_LEDGER_DIR)
