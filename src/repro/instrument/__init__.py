"""Flow-wide observability: tracing, metrics and profiling.

The VASE flow is a pipeline of very different engines (lexer, parser,
DAE causalization, branch-and-bound search, op-amp sizing, MNA
simulation); this package gives all of them one measurement layer:

* :mod:`repro.instrument.tracer` — hierarchical spans.  Stages wrap
  their work in ``with trace_phase("map"):`` blocks; when no tracer is
  active the call returns a shared no-op span, so instrumented code
  pays (almost) nothing in production.  An active
  :class:`~repro.instrument.tracer.Tracer` renders its spans as a
  human-readable timing tree or as Chrome ``trace_event`` JSON
  (load it in ``chrome://tracing`` / Perfetto).
* :mod:`repro.instrument.metrics` — a process-wide registry of
  counters, gauges and histograms.  Hot paths (mapper search, pattern
  matching, op-amp sizing, MNA factorizations, the VASS frontend)
  publish effort counters here.
* :mod:`repro.instrument.profile` — repeat-run profiling of the whole
  flow, exposed as ``vase profile`` on the command line.
* :mod:`repro.instrument.explog` — a decision-level exploration
  recorder: while active, the branch-and-bound mapper streams one
  structured event per decision (candidates, alloc/share, prune with
  both bound values and the incumbent area, complete/infeasible with
  the violated constraints) and the DAE compiler records the chosen
  causalization.  Rendered by ``vase explain``
  (:mod:`repro.instrument.explain`) as a narrative, a Figure-6 DOT
  tree and a self-contained HTML exploration report.
* :mod:`repro.instrument.baseline` — a metrics regression gate over
  the benchmark metrics JSON dumps, exposed as ``vase bench-check``.
* :mod:`repro.instrument.events` — the unified telemetry bus.  All of
  the channels above double as publishers of typed, JSON-ready
  :class:`~repro.instrument.events.TelemetryEvent` records (run id,
  monotonic seq, wall-clock ts, category, payload) on one process-wide
  bus; subscribers include a JSONL sink (``vase synth --events``), a
  bounded ring buffer for programmatic consumers, and the live TTY
  progress renderer behind ``vase batch --progress``.
* :mod:`repro.instrument.ledger` — the persistent run ledger: one
  append-only JSONL record per synthesize/batch run (source and
  options fingerprints, outcome bucket, key metrics, cache counters,
  durations), read back by ``vase history`` and ``vase stats``.
* :mod:`repro.instrument.promexport` — Prometheus text exposition
  rendering of any metrics snapshot (``vase metrics --prom``,
  ``vase batch --metrics-out``) plus a dependency-free format lint.
"""

from repro.instrument.baseline import (
    BenchCheckReport,
    Regression,
    check_baselines,
    compare_metrics,
    extract_metrics,
)
from repro.instrument.events import (
    CATEGORIES,
    CATEGORY_CACHE,
    CATEGORY_CANCELLED,
    CATEGORY_EXPLOG,
    CATEGORY_LIFECYCLE,
    CATEGORY_METRIC,
    CATEGORY_RECOVERY,
    CATEGORY_RETRY,
    CATEGORY_SPAN,
    JsonlSink,
    ProgressRenderer,
    RingBuffer,
    TelemetryBus,
    TelemetryEvent,
    active_bus,
    current_run_id,
    disable_telemetry,
    enable_telemetry,
    new_run_id,
    run_scope,
    telemetry,
)
from repro.instrument.explain import (
    events_summary,
    narrate,
    render_exploration_html,
)
from repro.instrument.ledger import (
    OUTCOME_CANCELLED,
    OUTCOME_DEGRADED,
    OUTCOME_FAILED,
    OUTCOME_OK,
    LedgerRecord,
    RunLedger,
    format_stats,
    record_for_cancelled,
    resolve_ledger,
    summarize,
)
from repro.instrument.promexport import (
    render_family,
    render_prometheus,
    validate_exposition,
)
from repro.instrument.explog import (
    ExplorationLog,
    active_explog,
    disable_explog,
    enable_explog,
    explogging,
)
from repro.instrument.metrics import (
    Histogram,
    MetricsRegistry,
    metrics,
)
from repro.instrument.tracer import (
    Span,
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    trace_phase,
    tracing,
)
from repro.instrument.profile import (
    PhaseProfile,
    ProfileReport,
    aggregate_spans,
    profile_flow,
)

__all__ = [
    "BenchCheckReport",
    "Regression",
    "check_baselines",
    "compare_metrics",
    "extract_metrics",
    "CATEGORIES",
    "CATEGORY_CACHE",
    "CATEGORY_CANCELLED",
    "CATEGORY_EXPLOG",
    "CATEGORY_LIFECYCLE",
    "CATEGORY_METRIC",
    "CATEGORY_RECOVERY",
    "CATEGORY_RETRY",
    "CATEGORY_SPAN",
    "JsonlSink",
    "ProgressRenderer",
    "RingBuffer",
    "TelemetryBus",
    "TelemetryEvent",
    "active_bus",
    "current_run_id",
    "disable_telemetry",
    "enable_telemetry",
    "new_run_id",
    "run_scope",
    "telemetry",
    "LedgerRecord",
    "OUTCOME_CANCELLED",
    "OUTCOME_DEGRADED",
    "OUTCOME_FAILED",
    "OUTCOME_OK",
    "RunLedger",
    "format_stats",
    "record_for_cancelled",
    "resolve_ledger",
    "summarize",
    "render_family",
    "render_prometheus",
    "validate_exposition",
    "events_summary",
    "narrate",
    "render_exploration_html",
    "ExplorationLog",
    "active_explog",
    "disable_explog",
    "enable_explog",
    "explogging",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "Span",
    "Tracer",
    "active_tracer",
    "disable_tracing",
    "enable_tracing",
    "trace_phase",
    "tracing",
    "PhaseProfile",
    "ProfileReport",
    "aggregate_spans",
    "profile_flow",
]
