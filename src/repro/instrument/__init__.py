"""Flow-wide observability: tracing, metrics and profiling.

The VASE flow is a pipeline of very different engines (lexer, parser,
DAE causalization, branch-and-bound search, op-amp sizing, MNA
simulation); this package gives all of them one measurement layer:

* :mod:`repro.instrument.tracer` — hierarchical spans.  Stages wrap
  their work in ``with trace_phase("map"):`` blocks; when no tracer is
  active the call returns a shared no-op span, so instrumented code
  pays (almost) nothing in production.  An active
  :class:`~repro.instrument.tracer.Tracer` renders its spans as a
  human-readable timing tree or as Chrome ``trace_event`` JSON
  (load it in ``chrome://tracing`` / Perfetto).
* :mod:`repro.instrument.metrics` — a process-wide registry of
  counters, gauges and histograms.  Hot paths (mapper search, pattern
  matching, op-amp sizing, MNA factorizations, the VASS frontend)
  publish effort counters here.
* :mod:`repro.instrument.profile` — repeat-run profiling of the whole
  flow, exposed as ``vase profile`` on the command line.
"""

from repro.instrument.metrics import (
    Histogram,
    MetricsRegistry,
    metrics,
)
from repro.instrument.tracer import (
    Span,
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    trace_phase,
    tracing,
)
from repro.instrument.profile import (
    PhaseProfile,
    ProfileReport,
    aggregate_spans,
    profile_flow,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "Span",
    "Tracer",
    "active_tracer",
    "disable_tracing",
    "enable_tracing",
    "trace_phase",
    "tracing",
    "PhaseProfile",
    "ProfileReport",
    "aggregate_spans",
    "profile_flow",
]
