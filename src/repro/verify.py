"""Equivalence checking between specification and synthesized circuit.

Section 6 of the paper validates synthesis by simulating the produced
circuits and observing their output signals.  This module packages that
methodology: a :class:`EquivalenceReport` compares the VHIF
interpreter's execution of the *specification semantics* against the
MNA transient of the *synthesized op-amp netlist* on the same stimuli,
and summarizes the deviation.

Typical use::

    result = synthesize(SOURCE)
    report = verify_equivalence(
        result, inputs={"vin": sin_wave(0.5, 1e3)}, t_end=2e-3,
    )
    assert report.passed
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.flow import SynthesisResult
from repro.spice.netlister import elaborate
from repro.vhif.interp import Interpreter

Stimulus = Callable[[float], float]


@dataclass
class OutputComparison:
    """Deviation statistics for one output port."""

    port: str
    rms_error: float
    max_error: float
    reference_scale: float

    @property
    def relative_rms(self) -> float:
        return self.rms_error / max(self.reference_scale, 1e-12)

    def describe(self) -> str:
        return (
            f"{self.port}: rms error {self.rms_error*1e3:.2f} mV "
            f"({self.relative_rms*100:.1f} % of "
            f"{self.reference_scale:.3f} V scale), max "
            f"{self.max_error*1e3:.2f} mV"
        )


@dataclass
class EquivalenceReport:
    """Outcome of a specification-vs-circuit comparison."""

    comparisons: List[OutputComparison] = field(default_factory=list)
    tolerance: float = 0.05
    settle_fraction: float = 0.1

    @property
    def passed(self) -> bool:
        return all(
            c.relative_rms <= self.tolerance for c in self.comparisons
        )

    def describe(self) -> str:
        status = "EQUIVALENT" if self.passed else "DEVIATES"
        lines = [f"{status} (tolerance {self.tolerance*100:.0f} % rms):"]
        lines.extend("  " + c.describe() for c in self.comparisons)
        return "\n".join(lines)


def verify_equivalence(
    result: SynthesisResult,
    inputs: Optional[Mapping[str, Stimulus]] = None,
    t_end: float = 2e-3,
    dt: float = 2e-6,
    tolerance: float = 0.05,
    control_waves: Optional[Mapping[str, Stimulus]] = None,
    outputs: Optional[List[str]] = None,
) -> EquivalenceReport:
    """Compare behavioral and circuit-level outputs on shared stimuli.

    The first ``settle_fraction`` of both traces is discarded (op-amp
    macromodels and integrator companions need a few steps to bias up),
    then per-output RMS deviation is measured relative to the
    behavioral trace's scale.
    """
    inputs = dict(inputs or {})
    if outputs is not None:
        ports = list(outputs)
    else:
        ports = [
            name
            for name, info in result.design.ports.items()
            if info.direction == "out"
        ]
    if not ports:
        raise ValueError("design has no output ports to compare")

    # --- behavioral reference ------------------------------------------
    interp = Interpreter(result.design, dt=dt, inputs=inputs)
    behavioral = interp.run(t_end, probes=ports)

    # --- synthesized circuit -------------------------------------------
    circuit = elaborate(
        result.netlist, input_waves=inputs, control_waves=control_waves
    )
    probe_nodes = [circuit.output_nodes[p] for p in ports]
    sim = circuit.transient(t_end, dt, probes=probe_nodes)

    report = EquivalenceReport(tolerance=tolerance)
    skip = int(len(behavioral.time) * report.settle_fraction)
    for port, node in zip(ports, probe_nodes):
        reference = behavioral[port][skip:]
        measured = sim[node][skip:]
        n = min(len(reference), len(measured))
        reference, measured = reference[:n], measured[:n]
        error = measured - reference
        scale = float(np.max(np.abs(reference)))
        if scale < 1e-9:
            scale = max(float(np.max(np.abs(measured))), 1e-9)
        report.comparisons.append(
            OutputComparison(
                port=port,
                rms_error=float(np.sqrt(np.mean(error**2))),
                max_error=float(np.max(np.abs(error))),
                reference_scale=scale,
            )
        )
    return report
