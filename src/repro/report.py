"""Markdown design reports for synthesized systems.

Bundles everything a reviewer would want after a synthesis run — the
specification statistics, the VHIF structure, the chosen netlist with
per-instance estimates, search-effort numbers, FSM realizations, and
(optionally) a verification verdict — into one markdown document.
Exposed on the command line as ``vase report``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.estimation import Estimator
from repro.flow import SynthesisResult
from repro.spice import to_spice_deck
from repro.verify import EquivalenceReport


def generate_report(
    result: SynthesisResult,
    title: Optional[str] = None,
    verification: Optional[EquivalenceReport] = None,
    include_spice: bool = True,
) -> str:
    """Render a synthesis result as a markdown report."""
    design = result.design
    netlist = result.netlist
    stats = design.statistics()
    search = result.mapping.statistics
    lines: List[str] = []

    lines.append(f"# Synthesis report — {title or design.name}")
    lines.append("")
    lines.append("## Specification and intermediate representation")
    lines.append("")
    lines.append("| metric | value |")
    lines.append("|---|---|")
    lines.append(f"| signal-flow blocks | {stats.n_blocks} |")
    lines.append(f"| FSM states | {stats.n_states} |")
    lines.append(f"| data-path elements | {stats.n_datapath} |")
    lines.append(f"| input ports | {len([p for p in design.ports.values() if p.direction == 'in'])} |")
    lines.append(f"| output ports | {len([p for p in design.ports.values() if p.direction == 'out'])} |")
    lines.append("")

    if design.ports:
        lines.append("### Port annotations")
        lines.append("")
        lines.append("| port | dir | kind | limit | drive | range | band |")
        lines.append("|---|---|---|---|---|---|---|")
        for name, info in sorted(design.ports.items()):
            drive = (
                f"{info.drive_load_ohms:g} ohm @ {info.drive_amplitude:g} V"
                if info.drive_load_ohms is not None
                else "-"
            )
            limit = f"{info.limit_level:g} V" if info.limit_level else "-"
            vrange = (
                f"{info.value_range[0]:g}..{info.value_range[1]:g} V"
                if info.value_range
                else "-"
            )
            band = (
                f"{info.frequency_range[0]:g}..{info.frequency_range[1]:g} Hz"
                if info.frequency_range
                else "-"
            )
            lines.append(
                f"| {name} | {info.direction} | {info.kind} | {limit} | "
                f"{drive} | {vrange} | {band} |"
            )
        lines.append("")

    lines.append("## Synthesized architecture")
    lines.append("")
    lines.append(f"**Component summary:** {netlist.summary()}")
    lines.append("")
    lines.append(f"**Estimate:** {result.estimate.describe()}")
    lines.append("")
    lines.append("| instance | component | op amps | covers | inputs | control |")
    lines.append("|---|---|---|---|---|---|")
    estimator = Estimator()
    for inst in netlist.instances:
        lines.append(
            f"| {inst.name} | {inst.spec.name} | {inst.opamps} | "
            f"{sorted(inst.covers)} | {inst.inputs} | "
            f"{inst.control if inst.control is not None else '-'} |"
        )
    lines.append("")

    if result.realized_controls:
        lines.append("### Analog FSM realizations")
        lines.append("")
        for record in result.realized_controls:
            lines.append(
                f"- `{record.signal}` ({record.fsm}) realized as "
                f"{record.kind.replace('_', '-')} (block {record.block_id})"
            )
        lines.append("")
    digital = [s for s in result.fsm_summaries if s.mode != "analog"]
    if digital:
        lines.append("### Digital FSM fallback")
        lines.append("")
        for summary in digital:
            lines.append(f"- {summary.describe()}")
        lines.append("")

    lines.append("## Timing and search effort")
    lines.append("")
    if result.run_id:
        lines.append(f"- run id: `{result.run_id}`")
    lines.append(
        f"- decision nodes visited: {search.nodes_visited} "
        f"({search.nodes_pruned} pruned by the bounding rule)"
    )
    lines.append(
        f"- complete mappings: {search.complete_mappings} "
        f"({search.feasible_mappings} feasible)"
    )
    if search.constraint_violations:
        lines.append(
            "- infeasible mappings killed by: "
            f"{search.violation_summary()}"
        )
    lines.append(f"- sharing branches taken: {search.shared_branches}")
    lines.append(f"- runtime: {search.runtime_s * 1e3:.2f} ms")
    if result.cache_stats:
        lines.append(
            f"- pipeline cache: {result.cache_stats.get('hits', 0)} stage "
            f"hit(s), {result.cache_stats.get('misses', 0)} miss(es)"
        )
    if search.truncated:
        budget = (
            "wall-clock deadline"
            if search.truncated_reason == "deadline"
            else "node budget"
        )
        lines.append(
            f"- **search truncated**: the {budget} was exhausted before "
            "the tree was fully explored; the mapping above is the best "
            "found, not proven optimal"
        )
    lines.append("")

    if result.solver_exploration:
        lines.append("## Solver-space exploration")
        lines.append("")
        lines.append(
            "Every enumerated DAE causalization was mapped; the flow "
            "kept the best-area feasible result."
        )
        lines.append("")
        lines.append("| solver | outcome | area | op amps | note |")
        lines.append("|---|---|---|---|---|")
        for outcome in result.solver_exploration:
            if outcome.feasible:
                note = "**selected**" if outcome.chosen else "-"
                lines.append(
                    f"| #{outcome.solver} | feasible | "
                    f"{outcome.area * 1e12:,.0f} um^2 | "
                    f"{outcome.opamps} | {note} |"
                )
            else:
                lines.append(
                    f"| #{outcome.solver} | infeasible | - | - | "
                    f"{outcome.detail} |"
                )
        lines.append("")

    if result.recovery:
        lines.append("## Recovery")
        lines.append("")
        lines.append(
            "Synthesis initially **failed** and the recovery ladder ran; "
            + (
                "the architecture above is **degraded** relative to the "
                "original specification."
                if result.degraded
                else "no rung recovered."
            )
        )
        lines.append("")
        for event in result.recovery:
            lines.append(f"- {event.describe()}")
        lines.append("")
    for diagnostic in result.diagnostics:
        lines.append(f"> **{diagnostic.severity}**: {diagnostic.message}")
        lines.append("")

    if result.trace is not None and result.trace.roots:
        lines.append("### Per-phase timing")
        lines.append("")
        lines.append("```")
        lines.append(result.trace.format_tree())
        lines.append("```")
        lines.append("")

    if verification is not None:
        lines.append("## Verification")
        lines.append("")
        lines.append("```")
        lines.append(verification.describe())
        lines.append("```")
        lines.append("")

    if include_spice:
        lines.append("## SPICE deck")
        lines.append("")
        lines.append("```spice")
        lines.append(to_spice_deck(netlist))
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
