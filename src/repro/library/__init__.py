"""Component and pattern libraries (substitute for the cell library [7])."""

from repro.library.components import (
    ComponentLibrary,
    ComponentSpec,
    default_library,
)
from repro.library.patterns import (
    CandidateIndex,
    PatternMatch,
    PatternMatcher,
)

__all__ = [
    "ComponentLibrary",
    "ComponentSpec",
    "CandidateIndex",
    "PatternMatch",
    "PatternMatcher",
    "default_library",
]
