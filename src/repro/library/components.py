"""The op-amp-level analog component library.

Substitutes for the Cincinnati CMOS analog cell library [7] the paper
maps onto.  Each :class:`ComponentSpec` describes one library circuit:
its op-amp count (the mapper's area proxy and the bounding-rule
currency), its passive-element count (for area estimation), the
closed-loop specification it imposes on its op amps (for the
performance estimator), and the Table-1 display category.

The library is a plain registry so benchmarks can instantiate custom
libraries (e.g. the Figure-6 comp1/comp2/comp3 library) without
touching the default catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.diagnostics import SynthesisError


@dataclass(frozen=True)
class ComponentSpec:
    """One circuit of the component library."""

    name: str
    #: display category used in Table-1 style summaries
    category: str
    #: number of operational amplifiers in the circuit
    opamps: int
    #: number of passive elements (R, C) for area estimation
    passives: int = 2
    #: closed-loop gain magnitude the op amp(s) must support; the
    #: estimator multiplies it into the required unity-gain frequency.
    #: None means unity / not gain-determined.
    gain_param: Optional[str] = None
    #: does the circuit invert the signal (an inverting stage)?
    inverting: bool = False
    #: free-form notes (documentation)
    description: str = ""

    def required_gain(self, params: Mapping[str, object]) -> float:
        """Closed-loop |gain| implied by an instance's parameters."""
        if self.gain_param is None:
            return 1.0
        value = params.get(self.gain_param, 1.0)
        if isinstance(value, (list, tuple)):
            return max((abs(float(v)) for v in value), default=1.0)
        return abs(float(value))


#: The default component catalog, modeled on the classes of circuits the
#: paper's experiments report (Table 1, last column) plus the interface
#: circuits introduced by the branching rule's transformations.
def _default_specs() -> List[ComponentSpec]:
    return [
        ComponentSpec(
            name="inverting_amplifier",
            category="amplif.",
            opamps=1,
            passives=2,
            gain_param="gain",
            inverting=True,
            description="R2/R1 inverting op-amp stage",
        ),
        ComponentSpec(
            name="noninverting_amplifier",
            category="amplif.",
            opamps=1,
            passives=2,
            gain_param="gain",
            description="(1 + R2/R1) non-inverting op-amp stage",
        ),
        ComponentSpec(
            name="inverting_cascade",
            category="amplif.",
            opamps=2,
            passives=4,
            gain_param="gain",
            description=(
                "two inverting stages in cascade; a functional "
                "transformation target for high-gain / high-bandwidth paths"
            ),
        ),
        ComponentSpec(
            name="summing_amplifier",
            category="amplif.",
            opamps=1,
            passives=4,
            gain_param="weights",
            inverting=True,
            description="inverting weighted summer, one R per input",
        ),
        ComponentSpec(
            name="switched_gain_amplifier",
            category="amplif.",
            opamps=1,
            passives=4,
            gain_param="gains",
            description=(
                "amplifier whose gain-setting resistor is switched by a "
                "control signal (the receiver's rvar compensation stage)"
            ),
        ),
        ComponentSpec(
            name="difference_amplifier",
            category="diff. amplif.",
            opamps=1,
            passives=4,
            gain_param="gain",
            description="classic 4-resistor difference stage",
        ),
        ComponentSpec(
            name="integrator",
            category="integ.",
            opamps=1,
            passives=2,
            # no gain_param: the integrator "gain" is 1/RC, a time
            # constant — it does not scale the op amp's UGF requirement.
            inverting=True,
            description="inverting RC (Miller) integrator",
        ),
        ComponentSpec(
            name="summing_integrator",
            category="integ.",
            opamps=1,
            passives=4,
            inverting=True,
            description="multi-input RC integrator (analog computer style)",
        ),
        ComponentSpec(
            name="differentiator",
            category="diff.",
            opamps=1,
            passives=3,
            description="RC differentiator with high-frequency roll-off",
        ),
        ComponentSpec(
            name="log_amplifier",
            category="log.amplif.",
            opamps=1,
            passives=2,
            description="transdiode logarithmic amplifier",
        ),
        ComponentSpec(
            name="antilog_amplifier",
            category="anti-log.amplif.",
            opamps=1,
            passives=2,
            description="exponential (anti-log) amplifier",
        ),
        ComponentSpec(
            name="multiplier",
            category="multiplier",
            opamps=3,
            passives=6,
            description="log/antilog four-quadrant multiplier core",
        ),
        ComponentSpec(
            name="divider",
            category="divider",
            opamps=3,
            passives=6,
            description="log/antilog divider core",
        ),
        ComponentSpec(
            name="sample_hold",
            category="S/H",
            opamps=1,
            passives=2,
            description="track-and-hold with hold capacitor and buffer",
        ),
        ComponentSpec(
            name="analog_switch",
            category="switch",
            opamps=0,
            passives=1,
            description="transmission-gate analog switch",
        ),
        ComponentSpec(
            name="analog_mux",
            category="MUX",
            opamps=0,
            passives=2,
            description="transmission-gate analog multiplexer",
        ),
        ComponentSpec(
            name="zero_cross_detector",
            category="zero-cross det.",
            opamps=1,
            passives=1,
            description="open-loop comparator with small hysteresis margin",
        ),
        ComponentSpec(
            name="schmitt_trigger",
            category="Schmitt trigger",
            opamps=1,
            passives=2,
            description="positive-feedback comparator with set thresholds",
        ),
        ComponentSpec(
            name="adc",
            category="ADC",
            opamps=2,
            passives=8,
            description="successive-approximation converter front end",
        ),
        ComponentSpec(
            name="voltage_follower",
            category="follower",
            opamps=1,
            passives=0,
            description="unity-gain buffer for interfacing transformations",
        ),
        ComponentSpec(
            name="output_stage",
            category="output stage",
            opamps=1,
            passives=3,
            description=(
                "power output stage with limiting, inferred from port "
                "annotations (the paper's block 4)"
            ),
        ),
        ComponentSpec(
            name="limiter",
            category="limiter",
            opamps=1,
            passives=3,
            description="precision clipping stage",
        ),
        ComponentSpec(
            name="rectifier",
            category="rectifier",
            opamps=2,
            passives=4,
            description="precision full-wave rectifier (absolute value)",
        ),
    ]


class ComponentLibrary:
    """A named registry of component specs."""

    def __init__(self, specs: Optional[List[ComponentSpec]] = None,
                 name: str = "default"):
        self.name = name
        self._specs: Dict[str, ComponentSpec] = {}
        for spec in specs if specs is not None else _default_specs():
            self.add(spec)

    def add(self, spec: ComponentSpec) -> None:
        if spec.name in self._specs:
            raise SynthesisError(f"duplicate component {spec.name!r}")
        self._specs[spec.name] = spec

    def get(self, name: str) -> ComponentSpec:
        spec = self._specs.get(name)
        if spec is None:
            raise SynthesisError(f"library {self.name!r} has no component "
                                 f"{name!r}")
        return spec

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def names(self) -> List[str]:
        return sorted(self._specs)

    def specs(self) -> List[ComponentSpec]:
        return list(self._specs.values())


def default_library() -> ComponentLibrary:
    """The default analog cell library (substitute for [7])."""
    return ComponentLibrary()
