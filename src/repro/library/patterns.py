"""The pattern library: VHIF block-structures ↔ library components.

"The algorithm uses a library of patterns, that relate VHIF
block-structures to electronic circuits in the component library"
(paper Section 5, Figure 6b).  A :class:`PatternMatcher` enumerates, for
a given sub-graph (cone) of a signal-flow graph, every component that
implements the cone's overall functionality — including *functional
transformation* alternatives such as splitting a high-gain amplifier
into a cascade of two lower-gain stages.

Multi-block patterns implemented here:

* ``weighted sum`` — an ADD fed by SCALE/NEG stages collapses into one
  summing amplifier whose input resistors realize the weights (this is
  Figure 6's ``comp1`` when restricted to one scaled input);
* ``summing/scaled integrator`` — SCALEs and an optional ADD in front of
  an INTEGRATE collapse into a multi-input RC integrator;
* ``log-antilog multiplier / divider`` — EXP(LOG(a) ± LOG(b)) collapses
  into a translinear multiplier or divider core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.instrument import metrics
from repro.library.components import ComponentLibrary, ComponentSpec
from repro.vhif.sfg import Block, BlockKind, SignalFlowGraph

ControlSource = Union[str, int, None]


@dataclass
class PatternMatch:
    """One way of implementing a cone with one library component."""

    component: str
    params: Dict[str, object]
    cone: FrozenSet[int]
    root_id: int
    #: external driver block ids, one per component input, in port order
    inputs: List[int]
    control: ControlSource = None
    opamps: int = 0
    #: name of the functional transformation that produced this match
    transform: Optional[str] = None

    @property
    def size(self) -> int:
        return len(self.cone)

    def signature(self) -> Tuple[str, str, Tuple[int, ...]]:
        """Sharing key: component + parameters + input sources.

        Two cones in distinct signal paths can share one physical
        component exactly when their signatures are equal ("identical
        inputs, similar operations").
        """
        return (
            self.component,
            repr(sorted(self.params.items())),
            tuple(self.inputs),
        )

    def describe(self) -> str:
        t = f" [{self.transform}]" if self.transform else ""
        return (
            f"{self.component}({self.opamps} op amps) covering "
            f"{sorted(self.cone)}{t}"
        )


class PatternMatcher:
    """Enumerates component implementations for SFG cones."""

    def __init__(
        self,
        library: ComponentLibrary,
        max_sum_inputs: int = 8,
        max_weighted_scales: Optional[int] = None,
        cascade_gain_threshold: float = 10.0,
        enable_transforms: bool = True,
    ):
        self.library = library
        self.max_sum_inputs = max_sum_inputs
        #: cap on SCALE blocks foldable into one weighted sum (Figure 6's
        #: comp1 uses 1); None means unlimited.
        self.max_weighted_scales = max_weighted_scales
        self.cascade_gain_threshold = cascade_gain_threshold
        self.enable_transforms = enable_transforms

    # -- helpers ---------------------------------------------------------------

    def _spec(self, name: str) -> Optional[ComponentSpec]:
        return self.library.get(name) if name in self.library else None

    def _external_inputs(
        self, sfg: SignalFlowGraph, cone: FrozenSet[int]
    ) -> List[int]:
        return [driver.block_id for driver, _, _ in sfg.cone_inputs(cone)]

    def _control_of(self, sfg: SignalFlowGraph, block: Block) -> ControlSource:
        signal = sfg.control_signal_of(block)
        if signal is not None:
            return signal
        driver = sfg.control_driver_of(block)
        if driver is not None:
            return driver.block_id
        return None

    def _make(
        self,
        component: str,
        sfg: SignalFlowGraph,
        cone: FrozenSet[int],
        root: Block,
        params: Optional[Dict[str, object]] = None,
        inputs: Optional[List[int]] = None,
        control: ControlSource = None,
        transform: Optional[str] = None,
        extra_opamps: int = 0,
    ) -> Optional[PatternMatch]:
        spec = self._spec(component)
        if spec is None:
            return None
        return PatternMatch(
            component=component,
            params=dict(params or {}),
            cone=cone,
            root_id=root.block_id,
            inputs=(
                inputs
                if inputs is not None
                else self._external_inputs(sfg, cone)
            ),
            control=control,
            opamps=spec.opamps + extra_opamps,
            transform=transform,
        )

    # -- single-block patterns -----------------------------------------------------

    def _match_single(
        self, sfg: SignalFlowGraph, cone: FrozenSet[int], root: Block
    ) -> List[PatternMatch]:
        kind = root.kind
        out: List[Optional[PatternMatch]] = []
        if kind is BlockKind.SCALE:
            gain = root.gain
            if gain < 0:
                out.append(
                    self._make(
                        "inverting_amplifier",
                        sfg,
                        cone,
                        root,
                        params={"gain": gain},
                    )
                )
            else:
                out.append(
                    self._make(
                        "noninverting_amplifier",
                        sfg,
                        cone,
                        root,
                        params={"gain": gain},
                    )
                )
            if self.enable_transforms and abs(gain) > 1.0:
                # Functional transformation: replace one op amp by a
                # chain of two op amps with lower gains (bandwidth).
                out.append(
                    self._make(
                        "inverting_cascade",
                        sfg,
                        cone,
                        root,
                        params={"gain": gain},
                        transform="cascade_split",
                    )
                )
        elif kind is BlockKind.NEG:
            out.append(
                self._make(
                    "inverting_amplifier", sfg, cone, root, params={"gain": -1.0}
                )
            )
        elif kind is BlockKind.ADD:
            weights = [1.0] * root.n_inputs
            out.append(
                self._make(
                    self._weighted_sum_component(has_scales=False),
                    sfg,
                    cone,
                    root,
                    params={"weights": weights},
                )
            )
        elif kind is BlockKind.SUB:
            out.append(
                self._make(
                    "difference_amplifier", sfg, cone, root, params={"gain": 1.0}
                )
            )
        elif kind is BlockKind.MUL:
            out.append(self._make("multiplier", sfg, cone, root))
        elif kind is BlockKind.DIV:
            out.append(self._make("divider", sfg, cone, root))
        elif kind is BlockKind.INTEGRATE:
            out.append(
                self._make(
                    "integrator",
                    sfg,
                    cone,
                    root,
                    params={
                        "gain": root.gain,
                        "initial": root.params.get("initial", 0.0),
                    },
                )
            )
        elif kind is BlockKind.DIFFERENTIATE:
            out.append(self._make("differentiator", sfg, cone, root))
        elif kind is BlockKind.LOG:
            out.append(self._make("log_amplifier", sfg, cone, root))
        elif kind is BlockKind.EXP:
            out.append(self._make("antilog_amplifier", sfg, cone, root))
        elif kind is BlockKind.ABS:
            out.append(self._make("rectifier", sfg, cone, root))
        elif kind is BlockKind.LIMIT:
            component = (
                "output_stage"
                if root.params.get("role") == "output_stage"
                else "limiter"
            )
            out.append(
                self._make(
                    component,
                    sfg,
                    cone,
                    root,
                    params={
                        "low": root.params.get("low", -1.0),
                        "high": root.params.get("high", 1.0),
                        "load_ohms": root.params.get("load_ohms"),
                    },
                )
            )
        elif kind is BlockKind.BUFFER:
            component = (
                "output_stage"
                if root.params.get("role") == "output_stage"
                else "voltage_follower"
            )
            out.append(self._make(component, sfg, cone, root))
        elif kind is BlockKind.SAMPLE_HOLD:
            out.append(
                self._make(
                    "sample_hold",
                    sfg,
                    cone,
                    root,
                    control=self._control_of(sfg, root),
                )
            )
        elif kind is BlockKind.SWITCH:
            out.append(
                self._make(
                    "analog_switch",
                    sfg,
                    cone,
                    root,
                    control=self._control_of(sfg, root),
                )
            )
        elif kind is BlockKind.MUX:
            out.append(
                self._make(
                    "analog_mux",
                    sfg,
                    cone,
                    root,
                    params={"ways": root.n_inputs},
                    control=self._control_of(sfg, root),
                )
            )
        elif kind is BlockKind.COMPARATOR:
            hysteresis = float(root.params.get("hysteresis", 0.0))
            component = (
                "schmitt_trigger" if hysteresis > 0.0 else "zero_cross_detector"
            )
            out.append(
                self._make(
                    component,
                    sfg,
                    cone,
                    root,
                    params={
                        "threshold": root.params.get("threshold", 0.0),
                        "hysteresis": hysteresis,
                        "invert": bool(root.params.get("invert", False)),
                    },
                )
            )
        elif kind is BlockKind.ADC:
            out.append(
                self._make(
                    "adc",
                    sfg,
                    cone,
                    root,
                    params={"bits": root.params.get("bits", 8)},
                    control=self._control_of(sfg, root),
                )
            )
        return [m for m in out if m is not None]

    def _weighted_sum_component(self, has_scales: bool) -> str:
        """Pick the summing component; a library may provide a distinct
        circuit for the scale-and-add structure (Figure 6's comp1)."""
        if has_scales and "weighted_summing_amplifier" in self.library:
            return "weighted_summing_amplifier"
        return "summing_amplifier"

    # -- multi-block patterns --------------------------------------------------------

    def _match_weighted_sum(
        self, sfg: SignalFlowGraph, cone: FrozenSet[int], root: Block
    ) -> List[PatternMatch]:
        if root.kind is not BlockKind.ADD:
            return []
        members = cone - {root.block_id}
        if not members:
            return []
        weights: List[float] = []
        inputs: List[int] = []
        scale_count = 0
        for port in range(root.n_inputs):
            driver = sfg.driver_of(root, port)
            if driver is None:
                return []
            if driver.block_id in members:
                if driver.kind is BlockKind.SCALE:
                    weight = driver.gain
                elif driver.kind is BlockKind.NEG:
                    weight = -1.0
                else:
                    return []  # only scale/neg stages fold into the summer
                scale_count += 1
                inner = sfg.driver_of(driver, 0)
                if inner is None:
                    return []
                weights.append(weight)
                inputs.append(inner.block_id)
            else:
                weights.append(1.0)
                inputs.append(driver.block_id)
        # Every cone member must be one of the folded stages.
        folded = {
            sfg.driver_of(root, p).block_id
            for p in range(root.n_inputs)
            if sfg.driver_of(root, p).block_id in members
        }
        if folded != members:
            return []
        if (
            self.max_weighted_scales is not None
            and scale_count > self.max_weighted_scales
        ):
            return []
        if len(weights) > self.max_sum_inputs:
            return []
        match = self._make(
            self._weighted_sum_component(has_scales=scale_count > 0),
            sfg,
            cone,
            root,
            params={"weights": weights},
            inputs=inputs,
        )
        return [match] if match else []

    def _match_integrator(
        self, sfg: SignalFlowGraph, cone: FrozenSet[int], root: Block
    ) -> List[PatternMatch]:
        if root.kind is not BlockKind.INTEGRATE:
            return []
        members = cone - {root.block_id}
        if not members:
            return []
        front = sfg.driver_of(root, 0)
        if front is None or front.block_id not in cone:
            return []
        initial = root.params.get("initial", 0.0)
        if front.kind is BlockKind.SCALE and members == {front.block_id}:
            inner = sfg.driver_of(front, 0)
            if inner is None:
                return []
            match = self._make(
                "integrator",
                sfg,
                cone,
                root,
                params={"gain": root.gain * front.gain, "initial": initial},
                inputs=[inner.block_id],
            )
            return [match] if match else []
        if front.kind is BlockKind.NEG and members == {front.block_id}:
            inner = sfg.driver_of(front, 0)
            if inner is None:
                return []
            match = self._make(
                "integrator",
                sfg,
                cone,
                root,
                params={"gain": -root.gain, "initial": initial},
                inputs=[inner.block_id],
            )
            return [match] if match else []
        if front.kind is BlockKind.ADD:
            # INTEGRATE(ADD(scale...)) -> summing integrator.
            sum_cone = cone - {root.block_id}
            sum_matches = self._match_weighted_sum(sfg, frozenset(sum_cone), front)
            if not sum_matches and sum_cone == {front.block_id}:
                sum_matches = [
                    m
                    for m in self._match_single(
                        sfg, frozenset(sum_cone), front
                    )
                    if "weights" in m.params
                ]
            results: List[PatternMatch] = []
            for sum_match in sum_matches:
                weights = [
                    root.gain * float(w)
                    for w in sum_match.params["weights"]  # type: ignore[index]
                ]
                match = self._make(
                    "summing_integrator",
                    sfg,
                    cone,
                    root,
                    params={"weights": weights, "initial": initial},
                    inputs=sum_match.inputs,
                )
                if match:
                    results.append(match)
            return results
        return []

    def _match_log_antilog(
        self, sfg: SignalFlowGraph, cone: FrozenSet[int], root: Block
    ) -> List[PatternMatch]:
        """EXP(LOG(a) + LOG(b)) -> multiplier, EXP(LOG(a) - LOG(b)) -> divider."""
        if root.kind is not BlockKind.EXP or len(cone) != 4:
            return []
        middle = sfg.driver_of(root, 0)
        if middle is None or middle.block_id not in cone:
            return []
        if middle.kind is BlockKind.ADD and middle.n_inputs == 2:
            component = "multiplier"
        elif middle.kind is BlockKind.SUB:
            component = "divider"
        else:
            return []
        logs = [sfg.driver_of(middle, p) for p in range(2)]
        if any(
            log is None or log.kind is not BlockKind.LOG or log.block_id not in cone
            for log in logs
        ):
            return []
        expected = {root.block_id, middle.block_id} | {
            log.block_id for log in logs  # type: ignore[union-attr]
        }
        if frozenset(expected) != cone:
            return []
        inputs = []
        for log in logs:
            inner = sfg.driver_of(log, 0)  # type: ignore[arg-type]
            if inner is None:
                return []
            inputs.append(inner.block_id)
        match = self._make(component, sfg, cone, root, inputs=inputs)
        return [match] if match else []

    def _match_switched_gain(
        self, sfg: SignalFlowGraph, cone: FrozenSet[int], root: Block
    ) -> List[PatternMatch]:
        """MUL(x, MUX(const...)) -> amplifier with a switched gain network.

        This is how the receiver's compensation works in the paper's
        Figure 7b: the variable resistance ``rvar`` becomes a switched
        feedback resistor of one amplifier.
        """
        if root.kind is not BlockKind.MUL or len(cone) != 2:
            return []
        members = cone - {root.block_id}
        (mux_id,) = members
        mux = sfg.block(mux_id)
        if mux.kind is not BlockKind.MUX:
            return []
        gains: List[float] = []
        for port in range(mux.n_inputs):
            driver = sfg.driver_of(mux, port)
            if driver is None or driver.kind is not BlockKind.CONST:
                return []
            gains.append(float(driver.params["value"]))
        signal_input = None
        for port in range(2):
            driver = sfg.driver_of(root, port)
            if driver is not None and driver.block_id != mux_id:
                signal_input = driver.block_id
        if signal_input is None:
            return []
        match = self._make(
            "switched_gain_amplifier",
            sfg,
            cone,
            root,
            params={"gains": gains},
            inputs=[signal_input],
            control=self._control_of(sfg, mux),
        )
        return [match] if match else []

    # -- entry point --------------------------------------------------------------------

    def match_cone(
        self, sfg: SignalFlowGraph, cone: FrozenSet[int], root: Block
    ) -> List[PatternMatch]:
        """All component implementations of ``cone`` (may be empty)."""
        if len(cone) == 1:
            return self._match_single(sfg, cone, root)
        matches: List[PatternMatch] = []
        matches.extend(self._match_weighted_sum(sfg, cone, root))
        matches.extend(self._match_integrator(sfg, cone, root))
        matches.extend(self._match_log_antilog(sfg, cone, root))
        matches.extend(self._match_switched_gain(sfg, cone, root))
        return matches

    def candidates(
        self, sfg: SignalFlowGraph, root: Block, max_size: int = 4
    ) -> List[PatternMatch]:
        """Matches for every cone rooted at ``root``, largest first.

        This ordering implements the paper's *sequencing rule*: branching
        alternatives that map a higher number of blocks to one library
        component are visited first.
        """
        out: List[PatternMatch] = []
        n_cones = 0
        for cone in sfg.iter_cones(root, max_size=max_size):
            n_cones += 1
            out.extend(self.match_cone(sfg, cone, root))
        out.sort(key=lambda m: (-m.size, m.opamps, m.component))
        registry = metrics()
        if registry.enabled:
            registry.inc("patterns.candidate_calls")
            registry.inc("patterns.cones_examined", n_cones)
            registry.inc("patterns.matches", len(out))
        return out


class CandidateIndex:
    """Incremental candidate store for the mapper's branch-and-bound.

    The naive search calls :meth:`PatternMatcher.candidates` — a full
    cone enumeration plus pattern matching — at *every* decision node,
    then filters out candidates overlapping the covered set and re-sorts
    the remainder.  This index enumerates each root exactly once and
    keeps the covered-cone filter incremental: every candidate carries a
    counter of how many of its cone blocks are currently covered, and
    :meth:`cover` / :meth:`uncover` adjust only the counters of the
    candidates that actually contain the touched blocks (via a
    block → candidate reverse map).  A query is then a single pass
    selecting the entries whose counter is zero.

    Ordering stays byte-identical to the naive path: the entry lists are
    sorted once at enumeration time with the mapper's sequencing key,
    and because Python's sort is stable, ``filter(sort(L)) ==
    sort(filter(L))`` — pre-sorting then filtering yields exactly the
    sequence the seed produced by filtering then sorting.

    The mapper must keep the index's covered view in sync by routing
    every ``self._covered`` mutation through :meth:`cover` /
    :meth:`uncover`; cones are disjoint from the covered set at
    alloc/share time (the query filter guarantees it), so the counter
    arithmetic never double-counts.
    """

    def __init__(
        self,
        matcher: PatternMatcher,
        sfg: SignalFlowGraph,
        max_cone_size: int = 4,
        include_transforms: bool = True,
        sort_key: Optional[Callable[[PatternMatch], object]] = None,
    ):
        self.matcher = matcher
        self.sfg = sfg
        self.max_cone_size = max_cone_size
        self.include_transforms = include_transforms
        #: sequencing order, applied once per root; ``None`` keeps the
        #: matcher's own order ("arbitrary" sequencing)
        self.sort_key = sort_key
        #: root block id -> its candidates, in final query order
        self._entries: Dict[int, List[PatternMatch]] = {}
        #: root block id -> per-entry count of covered cone blocks
        self._blocked: Dict[int, List[int]] = {}
        #: block id -> the (root, entry index) pairs whose cones hold it
        self._by_block: Dict[int, List[Tuple[int, int]]] = {}
        self._covered: Set[int] = set()
        #: queries served from an already-enumerated root
        self.hits = 0
        #: queries that had to enumerate (once per distinct root)
        self.misses = 0

    def _build(self, root: Block) -> None:
        entries = self.matcher.candidates(
            self.sfg, root, max_size=self.max_cone_size
        )
        if not self.include_transforms:
            entries = [m for m in entries if m.transform is None]
        if self.sort_key is not None:
            entries.sort(key=self.sort_key)
        root_id = root.block_id
        blocked: List[int] = []
        for index, match in enumerate(entries):
            blocked.append(len(match.cone & self._covered))
            for block_id in match.cone:
                self._by_block.setdefault(block_id, []).append(
                    (root_id, index)
                )
        self._entries[root_id] = entries
        self._blocked[root_id] = blocked

    def candidates(self, root: Block) -> List[PatternMatch]:
        """The viable candidates of ``root`` under the covered set."""
        root_id = root.block_id
        if root_id not in self._entries:
            self.misses += 1
            self._build(root)
        else:
            self.hits += 1
        blocked = self._blocked[root_id]
        return [
            match
            for index, match in enumerate(self._entries[root_id])
            if not blocked[index]
        ]

    def all_entries(self, root: Block) -> List[PatternMatch]:
        """Every enumerated candidate of ``root``, covered or not.

        Bound computations use this: the minimum instance area over the
        *unfiltered* list lower-bounds whatever the search can allocate
        for the root, whatever the covered set looks like by then.
        """
        root_id = root.block_id
        if root_id not in self._entries:
            self.misses += 1
            self._build(root)
        return self._entries[root_id]

    def cover(self, blocks: Iterable[int]) -> None:
        """Blocks became covered: bump the overlap counters."""
        by_block = self._by_block
        for block_id in blocks:
            self._covered.add(block_id)
            for root_id, index in by_block.get(block_id, ()):
                self._blocked[root_id][index] += 1

    def uncover(self, blocks: Iterable[int]) -> None:
        """Backtrack: blocks became uncovered again."""
        by_block = self._by_block
        for block_id in blocks:
            self._covered.discard(block_id)
            for root_id, index in by_block.get(block_id, ()):
                self._blocked[root_id][index] -= 1
