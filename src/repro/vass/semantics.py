"""Semantic analysis for VASS programs.

The analyzer builds symbol tables for an (entity, architecture) pair,
type-checks all expressions, folds static constant expressions, and runs
the VASS subset restriction checks (see :mod:`repro.vass.restrictions`).
Its output, :class:`AnalyzedDesign`, is the compiler's input.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.diagnostics import (
    DiagnosticSink,
    NO_LOCATION,
    SemanticError,
    SourceLocation,
)
from repro.vass import ast_nodes as ast


class ValueType(enum.Enum):
    """The VASS type universe."""

    REAL = "real"
    INTEGER = "integer"
    BIT = "bit"
    BIT_VECTOR = "bit_vector"
    BOOLEAN = "boolean"
    REAL_VECTOR = "real_vector"

    def is_analog(self) -> bool:
        return self in (ValueType.REAL, ValueType.REAL_VECTOR)

    def is_discrete(self) -> bool:
        return not self.is_analog()


_TYPE_BY_NAME = {
    "real": ValueType.REAL,
    "voltage": ValueType.REAL,
    "current": ValueType.REAL,
    "integer": ValueType.INTEGER,
    "bit": ValueType.BIT,
    "bit_vector": ValueType.BIT_VECTOR,
    "boolean": ValueType.BOOLEAN,
    "real_vector": ValueType.REAL_VECTOR,
    "electrical": ValueType.REAL,  # terminal nature
}


def value_type_of(mark: ast.TypeMark) -> ValueType:
    """Map a type mark onto the VASS type universe."""
    vtype = _TYPE_BY_NAME.get(mark.name)
    if vtype is None:
        raise SemanticError(f"unknown type {mark.name!r}")
    return vtype


@dataclass
class Symbol:
    """One declared name visible in the architecture."""

    name: str
    object_class: ast.ObjectClass
    value_type: ValueType
    mode: Optional[ast.PortMode] = None  # None for non-port objects
    is_port: bool = False
    annotations: List[ast.Annotation] = field(default_factory=list)
    initial: Optional[ast.Expression] = None
    static_value: Optional[float] = None  # folded value for constants
    bounds: Optional[tuple] = None  # for vectors
    location: SourceLocation = NO_LOCATION

    def annotation(self, cls: type) -> Optional[ast.Annotation]:
        for ann in self.annotations:
            if isinstance(ann, cls):
                return ann
        return None


class Scope:
    """A flat, single-level symbol table with an optional parent."""

    def __init__(self, parent: Optional["Scope"] = None):
        self._symbols: Dict[str, Symbol] = {}
        self.parent = parent

    def declare(self, symbol: Symbol) -> None:
        if symbol.name in self._symbols:
            raise SemanticError(
                f"duplicate declaration of {symbol.name!r}", symbol.location
            )
        self._symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope._symbols:
                return scope._symbols[name]
            scope = scope.parent
        return None

    def require(self, name: str, location: SourceLocation = NO_LOCATION) -> Symbol:
        symbol = self.lookup(name)
        if symbol is None:
            raise SemanticError(f"undeclared name {name!r}", location)
        return symbol

    def symbols(self) -> List[Symbol]:
        return list(self._symbols.values())

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None


# ---------------------------------------------------------------------------
# Static expression evaluation (constant folding)
# ---------------------------------------------------------------------------

_STATIC_FUNCTIONS = {
    "log": math.log,
    "ln": math.log,
    "exp": math.exp,
    "sqrt": math.sqrt,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "arctan": math.atan,
    "sign": lambda x: math.copysign(1.0, x) if x != 0 else 0.0,
}


def eval_static(
    expr: ast.Expression, scope: Optional[Scope] = None
) -> Union[float, bool, str]:
    """Evaluate a static (compile-time constant) expression.

    Raises :class:`SemanticError` when the expression references
    anything that is not a constant.
    """
    if isinstance(expr, ast.IntegerLiteral):
        return float(expr.value)
    if isinstance(expr, ast.RealLiteral):
        return expr.value
    if isinstance(expr, ast.BooleanLiteral):
        return expr.value
    if isinstance(expr, ast.CharacterLiteral):
        return expr.value
    if isinstance(expr, ast.StringLiteral):
        return expr.value
    if isinstance(expr, ast.Name):
        if scope is not None:
            symbol = scope.lookup(expr.identifier)
            if (
                symbol is not None
                and symbol.object_class is ast.ObjectClass.CONSTANT
                and symbol.static_value is not None
            ):
                return symbol.static_value
        raise SemanticError(
            f"{expr.identifier!r} is not a static constant", expr.location
        )
    if isinstance(expr, ast.UnaryOp):
        value = eval_static(expr.operand, scope)
        if expr.operator == "-":
            return -float(value)
        if expr.operator == "+":
            return float(value)
        if expr.operator == "abs":
            return abs(float(value))
        if expr.operator == "not":
            return not bool(value)
        raise SemanticError(f"unknown unary operator {expr.operator!r}", expr.location)
    if isinstance(expr, ast.BinaryOp):
        left = eval_static(expr.left, scope)
        right = eval_static(expr.right, scope)
        op = expr.operator
        if op == "+":
            return float(left) + float(right)
        if op == "-":
            return float(left) - float(right)
        if op == "*":
            return float(left) * float(right)
        if op == "/":
            if float(right) == 0.0:
                raise SemanticError("division by zero in static expression",
                                    expr.location)
            return float(left) / float(right)
        if op == "**":
            return float(left) ** float(right)
        if op == "mod":
            return float(left) % float(right)
        if op == "=":
            return left == right
        if op == "/=":
            return left != right
        if op == "<":
            return float(left) < float(right)
        if op == "<=":
            return float(left) <= float(right)
        if op == ">":
            return float(left) > float(right)
        if op == ">=":
            return float(left) >= float(right)
        if op == "and":
            return bool(left) and bool(right)
        if op == "or":
            return bool(left) or bool(right)
        raise SemanticError(f"operator {op!r} is not static", expr.location)
    if isinstance(expr, ast.FunctionCall) and expr.name in _STATIC_FUNCTIONS:
        args = [float(eval_static(a, scope)) for a in expr.arguments]
        return _STATIC_FUNCTIONS[expr.name](*args)
    raise SemanticError("expression is not static", expr.location)


def is_static(expr: ast.Expression, scope: Optional[Scope] = None) -> bool:
    """True when :func:`eval_static` would succeed on ``expr``."""
    try:
        eval_static(expr, scope)
        return True
    except SemanticError:
        return False


# ---------------------------------------------------------------------------
# Expression type inference
# ---------------------------------------------------------------------------

_BOOLEAN_OPERATORS = frozenset({"=", "/=", "<", "<=", ">", ">="})
_LOGICAL_OPERATORS = frozenset({"and", "or", "nand", "nor", "xor", "xnor"})
_ARITHMETIC_OPERATORS = frozenset({"+", "-", "*", "/", "**", "mod", "rem"})


class TypeChecker:
    """Infers and checks expression types against a scope."""

    def __init__(self, scope: Scope, sink: DiagnosticSink):
        self._scope = scope
        self._sink = sink

    def infer(self, expr: ast.Expression) -> ValueType:
        """Infer the type of ``expr``, reporting errors to the sink."""
        if isinstance(expr, (ast.IntegerLiteral,)):
            return ValueType.INTEGER
        if isinstance(expr, ast.RealLiteral):
            return ValueType.REAL
        if isinstance(expr, ast.CharacterLiteral):
            return ValueType.BIT
        if isinstance(expr, ast.StringLiteral):
            return ValueType.BIT_VECTOR
        if isinstance(expr, ast.BooleanLiteral):
            return ValueType.BOOLEAN
        if isinstance(expr, ast.Name):
            symbol = self._scope.lookup(expr.identifier)
            if symbol is None:
                self._sink.error(
                    f"undeclared name {expr.identifier!r}", expr.location
                )
                return ValueType.REAL
            return symbol.value_type
        if isinstance(expr, ast.IndexedName):
            base = self.infer(expr.prefix)
            self.infer(expr.index)
            if base is ValueType.REAL_VECTOR:
                return ValueType.REAL
            if base is ValueType.BIT_VECTOR:
                return ValueType.BIT
            self._sink.error("indexing a non-composite value", expr.location)
            return ValueType.REAL
        if isinstance(expr, ast.UnaryOp):
            operand = self.infer(expr.operand)
            if expr.operator == "not":
                if operand not in (ValueType.BOOLEAN, ValueType.BIT):
                    self._sink.error("'not' requires boolean or bit", expr.location)
                return operand
            if operand not in (ValueType.REAL, ValueType.INTEGER):
                self._sink.error(
                    f"unary {expr.operator!r} requires a numeric operand",
                    expr.location,
                )
            return operand
        if isinstance(expr, ast.BinaryOp):
            return self._infer_binary(expr)
        if isinstance(expr, ast.FunctionCall):
            for arg in expr.arguments:
                self.infer(arg)
            return ValueType.REAL
        if isinstance(expr, ast.AttributeExpr):
            return self._infer_attribute(expr)
        if isinstance(expr, ast.Aggregate):
            for element in expr.elements:
                etype = self.infer(element)
                if etype not in (ValueType.REAL, ValueType.INTEGER):
                    self._sink.error(
                        "aggregate elements must be numeric", expr.location
                    )
            return ValueType.REAL_VECTOR
        self._sink.error("unsupported expression form", expr.location)
        return ValueType.REAL

    def _infer_binary(self, expr: ast.BinaryOp) -> ValueType:
        left = self.infer(expr.left)
        right = self.infer(expr.right)
        op = expr.operator
        if op in _LOGICAL_OPERATORS:
            for side, vtype in (("left", left), ("right", right)):
                if vtype not in (ValueType.BOOLEAN, ValueType.BIT):
                    self._sink.error(
                        f"{side} operand of {op!r} must be boolean or bit",
                        expr.location,
                    )
            return ValueType.BOOLEAN
        if op in _BOOLEAN_OPERATORS:
            if left.is_analog() != right.is_analog() and not (
                {left, right} <= {ValueType.REAL, ValueType.INTEGER}
            ):
                if {left, right} != {ValueType.BIT, ValueType.BIT} and not (
                    left == right
                ):
                    self._sink.error(
                        f"comparison {op!r} between incompatible types "
                        f"{left.value} and {right.value}",
                        expr.location,
                    )
            return ValueType.BOOLEAN
        if op in _ARITHMETIC_OPERATORS:
            for side, vtype in (("left", left), ("right", right)):
                if vtype not in (ValueType.REAL, ValueType.INTEGER):
                    self._sink.error(
                        f"{side} operand of {op!r} must be numeric, got "
                        f"{vtype.value}",
                        expr.location,
                    )
            if ValueType.REAL in (left, right):
                return ValueType.REAL
            return ValueType.INTEGER
        if op == "&":
            return ValueType.BIT_VECTOR
        self._sink.error(f"unknown operator {op!r}", expr.location)
        return ValueType.REAL

    def _infer_attribute(self, expr: ast.AttributeExpr) -> ValueType:
        attribute = expr.attribute
        prefix_type = self.infer(expr.prefix)
        for arg in expr.arguments:
            self.infer(arg)
        if attribute == "above":
            if not prefix_type.is_analog():
                self._sink.error("'above requires a quantity prefix", expr.location)
            if len(expr.arguments) != 1:
                self._sink.error("'above takes exactly one argument", expr.location)
            return ValueType.BOOLEAN
        if attribute == "ltf":
            if not prefix_type.is_analog():
                self._sink.error("'ltf requires a quantity prefix",
                                 expr.location)
            if len(expr.arguments) != 2:
                self._sink.error(
                    "'ltf takes numerator and denominator coefficient "
                    "vectors",
                    expr.location,
                )
            return ValueType.REAL
        if attribute in ("dot", "integ", "delayed", "zoh"):
            if not prefix_type.is_analog():
                self._sink.error(
                    f"'{attribute} requires a quantity prefix", expr.location
                )
            return ValueType.REAL
        if attribute in ("event", "active"):
            return ValueType.BOOLEAN
        if attribute == "last_value":
            return prefix_type
        self._sink.error(f"unsupported attribute '{attribute}", expr.location)
        return ValueType.REAL


# ---------------------------------------------------------------------------
# Analyzed design
# ---------------------------------------------------------------------------


@dataclass
class AnalyzedDesign:
    """Semantic analysis result: the compiler's input."""

    entity: ast.EntityDecl
    architecture: ast.ArchitectureBody
    scope: Scope
    sink: DiagnosticSink

    @property
    def name(self) -> str:
        return self.entity.name

    def symbol(self, name: str) -> Symbol:
        return self.scope.require(name)

    def ports(self) -> List[Symbol]:
        return [s for s in self.scope.symbols() if s.is_port]

    def quantities(self) -> List[Symbol]:
        return [
            s
            for s in self.scope.symbols()
            if s.object_class is ast.ObjectClass.QUANTITY
        ]

    def signals(self) -> List[Symbol]:
        return [
            s for s in self.scope.symbols() if s.object_class is ast.ObjectClass.SIGNAL
        ]

    def input_quantities(self) -> List[Symbol]:
        return [
            s
            for s in self.ports()
            if s.object_class is ast.ObjectClass.QUANTITY
            and s.mode in (ast.PortMode.IN, ast.PortMode.INOUT)
        ]

    def output_quantities(self) -> List[Symbol]:
        return [
            s
            for s in self.ports()
            if s.object_class is ast.ObjectClass.QUANTITY
            and s.mode in (ast.PortMode.OUT, ast.PortMode.INOUT)
        ]


def _declare_port(scope: Scope, port: ast.PortDecl, sink: DiagnosticSink) -> None:
    try:
        vtype = value_type_of(port.type_mark)
    except SemanticError as err:
        sink.error(err.bare_message, port.location)
        vtype = ValueType.REAL
    if port.object_class is ast.ObjectClass.QUANTITY and not vtype.is_analog():
        sink.error(
            f"quantity port {port.name!r} must have a nature type", port.location
        )
    if port.object_class is ast.ObjectClass.SIGNAL and vtype is ValueType.REAL_VECTOR:
        sink.error(
            f"signal port {port.name!r} cannot be a real vector", port.location
        )
    scope.declare(
        Symbol(
            name=port.name,
            object_class=port.object_class,
            value_type=vtype,
            mode=port.mode,
            is_port=True,
            annotations=list(port.annotations),
            bounds=port.type_mark.bounds,
            location=port.location,
        )
    )


def _declare_object(scope: Scope, decl: ast.ObjectDecl, sink: DiagnosticSink) -> None:
    try:
        vtype = value_type_of(decl.type_mark)
    except SemanticError as err:
        sink.error(err.bare_message, decl.location)
        vtype = ValueType.REAL
    if decl.object_class is ast.ObjectClass.QUANTITY and not vtype.is_analog():
        sink.error(
            f"quantity {decl.name!r} must have a nature type "
            "(real or composite of reals)",
            decl.location,
        )
    symbol = Symbol(
        name=decl.name,
        object_class=decl.object_class,
        value_type=vtype,
        annotations=list(decl.annotations),
        initial=decl.initial,
        bounds=decl.type_mark.bounds,
        location=decl.location,
    )
    if decl.object_class is ast.ObjectClass.CONSTANT:
        if decl.initial is None:
            sink.error(f"constant {decl.name!r} needs a value", decl.location)
        else:
            try:
                value = eval_static(decl.initial, scope)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    symbol.static_value = float(value)
            except SemanticError as err:
                sink.error(err.bare_message, decl.location)
    try:
        scope.declare(symbol)
    except SemanticError as err:
        sink.error(err.bare_message, decl.location)


def _check_statement_expressions(
    design: AnalyzedDesign, checker: TypeChecker, sink: DiagnosticSink
) -> None:
    """Type-check every expression reachable from the architecture body."""

    def check_sequential(stmts: List[ast.SequentialStmt], scope: Scope) -> None:
        local = TypeChecker(scope, sink)
        for stmt in stmts:
            if isinstance(stmt, ast.SignalAssignment):
                target = scope.lookup(stmt.target)
                if target is None:
                    sink.error(f"undeclared signal {stmt.target!r}", stmt.location)
                elif target.object_class not in (
                    ast.ObjectClass.SIGNAL,
                ):
                    sink.error(
                        f"'<=' target {stmt.target!r} must be a signal", stmt.location
                    )
                local.infer(stmt.value)
            elif isinstance(stmt, ast.VariableAssignment):
                target = scope.lookup(stmt.target)
                if target is None:
                    sink.error(f"undeclared name {stmt.target!r}", stmt.location)
                elif target.object_class not in (
                    ast.ObjectClass.VARIABLE,
                    ast.ObjectClass.QUANTITY,
                ):
                    sink.error(
                        f"':=' target {stmt.target!r} must be a variable or "
                        "quantity",
                        stmt.location,
                    )
                if stmt.index is not None:
                    local.infer(stmt.index)
                local.infer(stmt.value)
            elif isinstance(stmt, ast.IfStmt):
                for cond, body in stmt.branches:
                    ctype = local.infer(cond)
                    if ctype not in (ValueType.BOOLEAN, ValueType.BIT):
                        sink.error("if condition must be boolean", stmt.location)
                    check_sequential(body, scope)
                check_sequential(stmt.else_body, scope)
            elif isinstance(stmt, ast.CaseStmt):
                local.infer(stmt.selector)
                for choices, body in stmt.alternatives:
                    for choice in choices:
                        local.infer(choice)
                    check_sequential(body, scope)
                if stmt.others is not None:
                    check_sequential(stmt.others, scope)
            elif isinstance(stmt, ast.WhileStmt):
                ctype = local.infer(stmt.condition)
                if ctype not in (ValueType.BOOLEAN, ValueType.BIT):
                    sink.error("while condition must be boolean", stmt.location)
                check_sequential(stmt.body, scope)
            elif isinstance(stmt, ast.ForStmt):
                local.infer(stmt.low)
                local.infer(stmt.high)
                loop_scope = Scope(parent=scope)
                loop_scope.declare(
                    Symbol(
                        name=stmt.variable,
                        object_class=ast.ObjectClass.CONSTANT,
                        value_type=ValueType.INTEGER,
                        location=stmt.location,
                    )
                )
                check_sequential(stmt.body, loop_scope)

    def check_concurrent(stmts: List[ast.ConcurrentStmt], scope: Scope) -> None:
        local = TypeChecker(scope, sink)
        for stmt in stmts:
            if isinstance(stmt, ast.SimpleSimultaneous):
                lt = local.infer(stmt.lhs)
                rt = local.infer(stmt.rhs)
                if not lt.is_analog() and lt is not ValueType.INTEGER:
                    sink.error(
                        "simultaneous statement sides must be analog expressions",
                        stmt.location,
                    )
                if not rt.is_analog() and rt is not ValueType.INTEGER:
                    sink.error(
                        "simultaneous statement sides must be analog expressions",
                        stmt.location,
                    )
            elif isinstance(stmt, ast.SimultaneousIf):
                for cond, body in stmt.branches:
                    ctype = local.infer(cond)
                    if ctype not in (ValueType.BOOLEAN, ValueType.BIT):
                        sink.error(
                            "simultaneous if condition must be boolean",
                            stmt.location,
                        )
                    check_concurrent(body, scope)
                check_concurrent(stmt.else_body, scope)
            elif isinstance(stmt, ast.SimultaneousCase):
                local.infer(stmt.selector)
                for choices, body in stmt.alternatives:
                    for choice in choices:
                        local.infer(choice)
                    check_concurrent(body, scope)
                if stmt.others is not None:
                    check_concurrent(stmt.others, scope)
            elif isinstance(stmt, ast.ProcessStmt):
                process_scope = Scope(parent=scope)
                for decl in stmt.declarations:
                    _declare_object(process_scope, decl, sink)
                proc_checker = TypeChecker(process_scope, sink)
                for event in stmt.sensitivity:
                    proc_checker.infer(event)
                check_sequential(stmt.body, process_scope)
            elif isinstance(stmt, ast.ProceduralStmt):
                procedural_scope = Scope(parent=scope)
                for decl in stmt.declarations:
                    _declare_object(procedural_scope, decl, sink)
                check_sequential(stmt.body, procedural_scope)

    check_concurrent(design.architecture.statements, design.scope)


def analyze(
    source: ast.SourceFile,
    entity_name: Optional[str] = None,
    check_restrictions: bool = True,
    architecture_name: Optional[str] = None,
) -> AnalyzedDesign:
    """Analyze one (entity, architecture) pair of ``source``.

    ``entity_name`` selects the entity (default: the file's single
    entity); ``architecture_name`` selects among several architectures
    of that entity (default: the last analyzed, VHDL's binding rule).
    Raises :class:`SemanticError` on any violation.
    """
    from repro.vass.restrictions import check_subset_restrictions

    sink = DiagnosticSink()
    entities = source.entities
    if entity_name is None:
        if len(entities) != 1:
            raise SemanticError(
                f"source has {len(entities)} entities; pass entity_name"
            )
        entity = entities[0]
    else:
        found = source.entity(entity_name)
        if found is None:
            raise SemanticError(f"entity {entity_name!r} not found")
        entity = found

    architecture = source.architecture_of(entity.name, architecture_name)
    if architecture is None:
        if architecture_name is not None:
            raise SemanticError(
                f"entity {entity.name!r} has no architecture "
                f"{architecture_name!r}"
            )
        raise SemanticError(f"no architecture for entity {entity.name!r}")

    scope = Scope()
    for package in source.packages:
        for decl in package.declarations:
            _declare_object(scope, decl, sink)
    for generic in entity.generics:
        _declare_object(scope, generic, sink)
    for port in entity.ports:
        _declare_port(scope, port, sink)
    for decl in architecture.declarations:
        _declare_object(scope, decl, sink)

    design = AnalyzedDesign(
        entity=entity, architecture=architecture, scope=scope, sink=sink
    )
    checker = TypeChecker(scope, sink)
    _check_statement_expressions(design, checker, sink)
    if check_restrictions:
        check_subset_restrictions(design, sink)
    sink.check("semantic analysis", SemanticError)
    return design


def analyze_source(
    text: str,
    entity_name: Optional[str] = None,
    filename: str = "<string>",
    check_restrictions: bool = True,
    architecture_name: Optional[str] = None,
) -> AnalyzedDesign:
    """Parse and analyze VASS source text in one call."""
    from repro.vass.parser import parse_source

    return analyze(
        parse_source(text, filename),
        entity_name=entity_name,
        check_restrictions=check_restrictions,
        architecture_name=architecture_name,
    )
