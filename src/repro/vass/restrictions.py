"""VASS subset restriction checks (Section 3 of the paper).

The paper adapts VHDL-AMS for synthesis by *restricting* constructs whose
simulation semantics cannot be realized in a continuous signal-flow
structure and by *requiring* annotations where structure cannot be
inferred.  This module implements those checks:

* terminal ports use only one of their through/across facets;
* quantities are of nature type (enforced in semantics) and signals of
  nature or bit/bit-vector type;
* ``for`` loops have statically known bounds (so they can be unrolled);
* ``while`` loops denote a sampling functionality: names read in the loop
  but produced outside must be quantities/ports/constants (held stable
  during execution), and the loop body must feed its own condition;
* processes have a sensitivity list, contain no ``wait`` statements, and
  never *read* a signal after assigning it (so each signal costs exactly
  one memory block);
* process sensitivity lists contain only events legal in VASS: events on
  ``'above`` of a quantity, or events on ports/signals.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.diagnostics import DiagnosticSink
from repro.vass import ast_nodes as ast
from repro.vass.semantics import AnalyzedDesign, Scope, is_static


def _assigned_names(stmts: Sequence[ast.SequentialStmt]) -> Set[str]:
    names: Set[str] = set()
    for stmt in ast.walk_sequential(stmts):
        if isinstance(stmt, ast.SignalAssignment):
            names.add(stmt.target)
        elif isinstance(stmt, ast.VariableAssignment):
            names.add(stmt.target)
    return names


def _read_names(stmts: Sequence[ast.SequentialStmt]) -> Set[str]:
    names: Set[str] = set()
    for stmt in ast.walk_sequential(stmts):
        if isinstance(stmt, (ast.SignalAssignment, ast.VariableAssignment)):
            names.update(ast.referenced_names(stmt.value))
            if isinstance(stmt, ast.VariableAssignment) and stmt.index is not None:
                names.update(ast.referenced_names(stmt.index))
        elif isinstance(stmt, ast.IfStmt):
            for cond, _ in stmt.branches:
                names.update(ast.referenced_names(cond))
        elif isinstance(stmt, ast.CaseStmt):
            names.update(ast.referenced_names(stmt.selector))
        elif isinstance(stmt, ast.WhileStmt):
            names.update(ast.referenced_names(stmt.condition))
        elif isinstance(stmt, ast.ForStmt):
            names.update(ast.referenced_names(stmt.low))
            names.update(ast.referenced_names(stmt.high))
    return names


def _check_terminal_facets(design: AnalyzedDesign, sink: DiagnosticSink) -> None:
    """Each terminal port may use only one of across/through in the body."""
    terminal_ports = [
        p
        for p in design.entity.ports
        if p.object_class is ast.ObjectClass.TERMINAL
    ]
    if not terminal_ports:
        return
    # In VASS the facet is declared in the port itself; check it is unique
    # and present.
    for port in terminal_ports:
        if port.facet is None:
            sink.error(
                f"terminal port {port.name!r} must declare its facet "
                "(ACROSS or THROUGH) for synthesis",
                port.location,
            )


def _check_for_loops(design: AnalyzedDesign, sink: DiagnosticSink) -> None:
    """Every for-loop must have statically evaluable bounds."""

    def visit(stmts: Sequence[ast.SequentialStmt], scope: Scope) -> None:
        for stmt in ast.walk_sequential(stmts):
            if isinstance(stmt, ast.ForStmt):
                if not is_static(stmt.low, scope) or not is_static(stmt.high, scope):
                    sink.error(
                        "for-loop bounds must be statically known so the "
                        "loop body can be unrolled",
                        stmt.location,
                    )

    for stmt in design.architecture.statements:
        if isinstance(stmt, (ast.ProcessStmt, ast.ProceduralStmt)):
            visit(stmt.body, design.scope)


def _check_while_loops(design: AnalyzedDesign, sink: DiagnosticSink) -> None:
    """While loops must denote sampling functionality (Section 3)."""

    def visit(stmts: Sequence[ast.SequentialStmt]) -> None:
        for stmt in ast.walk_sequential(stmts):
            if not isinstance(stmt, ast.WhileStmt):
                continue
            assigned = _assigned_names(stmt.body)
            condition_reads = set(ast.referenced_names(stmt.condition))
            if not condition_reads & assigned:
                sink.warn(
                    "while-loop condition does not depend on any value "
                    "computed by the loop body; the loop will never "
                    "terminate or never iterate",
                    stmt.location,
                )
            # Names read inside the loop but produced outside must be held
            # stable while the loop executes: quantities, ports, constants.
            reads = _read_names(stmt.body) | condition_reads
            for name in sorted(reads - assigned):
                symbol = design.scope.lookup(name)
                if symbol is None:
                    continue  # local variable of the enclosing procedural
                if symbol.object_class is ast.ObjectClass.SIGNAL:
                    sink.error(
                        f"signal {name!r} read inside a while-loop must be "
                        "constant while the loop executes; VASS only allows "
                        "quantities, ports and constants as loop inputs",
                        stmt.location,
                    )

    for stmt in design.architecture.statements:
        if isinstance(stmt, (ast.ProcessStmt, ast.ProceduralStmt)):
            visit(stmt.body)


def _check_processes(design: AnalyzedDesign, sink: DiagnosticSink) -> None:
    for stmt in design.architecture.statements:
        if not isinstance(stmt, ast.ProcessStmt):
            continue
        if not stmt.sensitivity:
            sink.error(
                "VASS processes must have a sensitivity list (they react "
                "to events, execute their body and suspend)",
                stmt.location,
            )
        for inner in ast.walk_sequential(stmt.body):
            if isinstance(inner, ast.WaitStmt):
                sink.error(
                    "wait statements are not allowed in VASS processes",
                    inner.location,
                )
        _check_signal_write_then_read(design, stmt, sink)
        _check_sensitivity_events(design, stmt, sink)


def _check_signal_write_then_read(
    design: AnalyzedDesign, process: ast.ProcessStmt, sink: DiagnosticSink
) -> None:
    """A signal cannot be referenced after being assigned in a process.

    This is the paper's rule that makes each *signal* realizable as a
    single memory block (no separate driver cell).  The check is a linear
    scan with branch-sensitive recursion: an assignment in any branch
    "poisons" the signal for all following statements.
    """

    def scan(stmts: Sequence[ast.SequentialStmt], written: Set[str]) -> Set[str]:
        for stmt in stmts:
            if isinstance(stmt, (ast.SignalAssignment, ast.VariableAssignment)):
                for name in ast.referenced_names(stmt.value):
                    symbol = design.scope.lookup(name)
                    if (
                        name in written
                        and symbol is not None
                        and symbol.object_class is ast.ObjectClass.SIGNAL
                    ):
                        sink.error(
                            f"signal {name!r} is referenced after being "
                            "assigned in the same process; VASS forbids "
                            "this so each signal needs only one memory "
                            "block",
                            stmt.location,
                        )
                if isinstance(stmt, ast.SignalAssignment):
                    written = written | {stmt.target}
            elif isinstance(stmt, ast.IfStmt):
                merged = set(written)
                for cond, body in stmt.branches:
                    for name in ast.referenced_names(cond):
                        symbol = design.scope.lookup(name)
                        if (
                            name in written
                            and symbol is not None
                            and symbol.object_class is ast.ObjectClass.SIGNAL
                        ):
                            sink.error(
                                f"signal {name!r} is referenced after being "
                                "assigned in the same process",
                                stmt.location,
                            )
                    merged |= scan(body, set(written))
                merged |= scan(stmt.else_body, set(written))
                written = merged
            elif isinstance(stmt, ast.CaseStmt):
                merged = set(written)
                for _, body in stmt.alternatives:
                    merged |= scan(body, set(written))
                if stmt.others is not None:
                    merged |= scan(stmt.others, set(written))
                written = merged
            elif isinstance(stmt, (ast.WhileStmt, ast.ForStmt)):
                written = written | scan(stmt.body, set(written))
        return written

    scan(process.body, set())


def _check_sensitivity_events(
    design: AnalyzedDesign, process: ast.ProcessStmt, sink: DiagnosticSink
) -> None:
    """Events must originate in the continuous-time part ('above) or the
    external environment (ports/signals)."""
    for event in process.sensitivity:
        if isinstance(event, ast.AttributeExpr) and event.attribute == "above":
            continue
        if isinstance(event, ast.Name):
            symbol = design.scope.lookup(event.identifier)
            if symbol is None:
                sink.error(
                    f"undeclared name {event.identifier!r} in sensitivity list",
                    event.location,
                )
            elif symbol.object_class is ast.ObjectClass.QUANTITY:
                sink.error(
                    f"quantity {event.identifier!r} cannot appear directly "
                    "in a sensitivity list; use 'above(threshold) events",
                    event.location,
                )
            continue
        sink.error(
            "sensitivity list entries must be signals, ports or "
            "quantity'above(threshold) expressions",
            event.location,
        )


def _check_procedurals(design: AnalyzedDesign, sink: DiagnosticSink) -> None:
    """Procedurals are stateless: every variable must be assigned before
    it is read (no information survives between invocations)."""
    for stmt in design.architecture.statements:
        if not isinstance(stmt, ast.ProceduralStmt):
            continue
        local_names = {d.name for d in stmt.declarations}
        assigned: Set[str] = set()

        def scan(stmts: Sequence[ast.SequentialStmt], assigned: Set[str]) -> Set[str]:
            for inner in stmts:
                if isinstance(inner, ast.VariableAssignment):
                    reads = set(ast.referenced_names(inner.value))
                    for name in reads & local_names - assigned:
                        # Reading an unassigned local would require memory
                        # across invocations, which procedurals do not have.
                        if isinstance(inner, ast.VariableAssignment):
                            sink.error(
                                f"variable {name!r} is read before being "
                                "assigned in a procedural; procedurals are "
                                "stateless between invocations",
                                inner.location,
                            )
                    assigned = assigned | {inner.target}
                elif isinstance(inner, ast.IfStmt):
                    merged: Set[str] = set(assigned)
                    branch_sets = []
                    for _, body in inner.branches:
                        branch_sets.append(scan(body, set(assigned)))
                    branch_sets.append(scan(inner.else_body, set(assigned)))
                    # A name counts as assigned after the if only when every
                    # branch assigns it (and an else exists).
                    if inner.else_body and branch_sets:
                        always = set.intersection(*branch_sets)
                        merged |= always
                    assigned = merged
                elif isinstance(inner, ast.WhileStmt):
                    # Loop-carried values are sampled (S/H), not memory;
                    # the while checker validates them separately.
                    assigned = assigned | _assigned_names(inner.body)
                elif isinstance(inner, ast.ForStmt):
                    assigned = scan(inner.body, assigned | {inner.variable})
            return assigned

        scan(stmt.body, assigned)


def check_subset_restrictions(design: AnalyzedDesign, sink: DiagnosticSink) -> None:
    """Run every VASS restriction check, reporting into ``sink``."""
    _check_terminal_facets(design, sink)
    _check_for_loops(design, sink)
    _check_while_loops(design, sink)
    _check_processes(design, sink)
    _check_procedurals(design, sink)
