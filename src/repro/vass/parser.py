"""Recursive-descent parser for VASS.

The grammar is the VHDL-AMS subset of Section 3 of the paper plus the
VASS annotation clauses.  Annotation clauses attach to port and object
declarations between the type mark (or initializer) and the closing
semicolon, e.g.::

    QUANTITY earph : OUT real IS voltage LIMITED AT 1.5 v
                     DRIVES 270.0 ohm AT 285.0 mv PEAK;

Numeric values in annotations accept unit suffixes (``v``, ``mv``,
``ohm``/``o``/``kohm``, ``hz``/``khz``/``mhz``) that scale to SI base
units.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.diagnostics import (
    LexerError,
    ParseError,
    SourceLocation,
    VaseError,
)
from repro.vass import ast_nodes as ast
from repro.vass.lexer import Token, TokenKind, tokenize


def _fault_active(site: str) -> bool:
    # Imported lazily: the parser sits at the very start of the import
    # graph, and repro.robust pulls in estimation (which needs the
    # parser back).  One cached-module lookup per parse call.
    from repro.robust.faultinject import fault_active

    return fault_active(site)

#: Functions recognized as predefined calls in expressions.
PREDEFINED_FUNCTIONS = frozenset(
    {
        "log",
        "ln",
        "exp",
        "sqrt",
        "sin",
        "cos",
        "tan",
        "arctan",
        "sign",
        "realmax",
        "realmin",
        "limit",
        "sample",
    }
)

#: Unit suffix -> multiplier to SI base unit.
UNIT_SCALE = {
    "v": 1.0,
    "mv": 1e-3,
    "uv": 1e-6,
    "kv": 1e3,
    "a": 1.0,
    "ma": 1e-3,
    "ua": 1e-6,
    "ohm": 1.0,
    "o": 1.0,
    "kohm": 1e3,
    "ko": 1e3,
    "mohm": 1e6,
    "hz": 1.0,
    "khz": 1e3,
    "mhz": 1e6,
    "ghz": 1e9,
    "s": 1.0,
    "ms": 1e-3,
    "us": 1e-6,
    "ns": 1e-9,
}

_RELATIONAL_OPS = {
    TokenKind.EQ: "=",
    TokenKind.NE: "/=",
    TokenKind.LT: "<",
    TokenKind.SIGNAL_ASSIGN: "<=",  # ``<=`` is "less or equal" in expressions
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}

_LOGICAL_OPS = frozenset({"and", "or", "nand", "nor", "xor", "xnor"})

#: Keywords at which error recovery resynchronizes: each can start a
#: design unit, a declaration, or a statement, so parsing can resume.
_RESYNC_KEYWORDS = frozenset(
    {
        "architecture",
        "case",
        "constant",
        "end",
        "entity",
        "for",
        "if",
        "library",
        "package",
        "procedural",
        "process",
        "quantity",
        "signal",
        "terminal",
        "use",
        "variable",
        "while",
    }
)


class Parser:
    """Parses a token stream into a :class:`~repro.vass.ast_nodes.SourceFile`.

    With ``collect_errors`` the parser keeps going after a syntax
    error: the error is appended to :attr:`errors`, the token stream is
    resynchronized at the next ``;`` or statement keyword, and parsing
    resumes — so one run reports *every* syntax error in a file
    (``vase check`` / ``vase batch``) instead of only the first.
    """

    def __init__(
        self,
        tokens: List[Token],
        filename: str = "<string>",
        collect_errors: bool = False,
    ):
        self._tokens = tokens
        self._pos = 0
        self._filename = filename
        self._collect_errors = collect_errors
        #: syntax errors collected in ``collect_errors`` mode
        self.errors: List[ParseError] = []

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check(self, kind: TokenKind, value: Optional[str] = None) -> bool:
        token = self._peek()
        if token.kind is not kind:
            return False
        return value is None or token.value == value

    def _check_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.kind is TokenKind.KEYWORD and token.value in words

    def _accept(self, kind: TokenKind, value: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _accept_keyword(self, *words: str) -> Optional[Token]:
        if self._check_keyword(*words):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, value: Optional[str] = None) -> Token:
        token = self._peek()
        if not self._check(kind, value):
            wanted = value if value is not None else kind.value
            raise ParseError(
                f"expected {wanted!r}, found {token.value!r}", token.location
            )
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not self._check_keyword(word):
            raise ParseError(
                f"expected keyword {word!r}, found {token.value!r}", token.location
            )
        return self._advance()

    def _expect_identifier(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENTIFIER:
            raise ParseError(
                f"expected identifier, found {token.value!r}", token.location
            )
        return self._advance()

    def _loc(self) -> SourceLocation:
        return self._peek().location

    # -- error recovery --------------------------------------------------------

    def _recover(self, error: ParseError) -> None:
        """Collect ``error`` and resynchronize, or re-raise it."""
        if not self._collect_errors:
            raise error
        self.errors.append(error)
        self._resynchronize()

    def _resynchronize(self) -> None:
        """Skip past the next ``;`` or to the next statement keyword."""
        while not self._check(TokenKind.EOF):
            token = self._peek()
            if token.kind is TokenKind.SEMICOLON:
                self._advance()
                return
            if (
                token.kind is TokenKind.KEYWORD
                and token.value in _RESYNC_KEYWORDS
            ):
                return
            self._advance()

    # -- design file ----------------------------------------------------------

    def parse_source_file(self) -> ast.SourceFile:
        """Parse a whole VASS source file."""
        units: List[ast.DesignUnit] = []
        while not self._check(TokenKind.EOF):
            start = self._pos
            try:
                if self._check_keyword("library", "use"):
                    self._skip_context_clause()
                elif self._check_keyword("entity"):
                    units.append(self._parse_entity())
                elif self._check_keyword("architecture"):
                    units.append(self._parse_architecture())
                elif self._check_keyword("package"):
                    units.append(self._parse_package())
                else:
                    token = self._peek()
                    raise ParseError(
                        f"expected design unit, found {token.value!r}",
                        token.location,
                    )
            except ParseError as err:
                self._recover(err)
                if self._pos == start and not self._check(TokenKind.EOF):
                    # Resynchronization made no progress (e.g. stopped
                    # on the very keyword that failed): step over it.
                    self._advance()
        return ast.SourceFile(units=units, filename=self._filename)

    def _skip_context_clause(self) -> None:
        while not self._check(TokenKind.SEMICOLON) and not self._check(TokenKind.EOF):
            self._advance()
        self._expect(TokenKind.SEMICOLON)

    # -- entity ----------------------------------------------------------------

    def _parse_entity(self) -> ast.EntityDecl:
        loc = self._loc()
        self._expect_keyword("entity")
        name = self._expect_identifier().value
        self._expect_keyword("is")
        ports: List[ast.PortDecl] = []
        generics: List[ast.ObjectDecl] = []
        if self._accept_keyword("generic"):
            self._expect(TokenKind.LPAREN)
            generics = self._parse_generic_list()
            self._expect(TokenKind.RPAREN)
            self._expect(TokenKind.SEMICOLON)
        if self._accept_keyword("port"):
            self._expect(TokenKind.LPAREN)
            ports = self._parse_port_list()
            self._expect(TokenKind.RPAREN)
            self._expect(TokenKind.SEMICOLON)
        self._expect_keyword("end")
        self._accept_keyword("entity")
        if self._peek().kind is TokenKind.IDENTIFIER:
            closing = self._advance().value
            if closing != name:
                raise ParseError(
                    f"entity name mismatch: {closing!r} vs {name!r}", loc
                )
        self._expect(TokenKind.SEMICOLON)
        return ast.EntityDecl(name=name, ports=ports, generics=generics, location=loc)

    def _parse_generic_list(self) -> List[ast.ObjectDecl]:
        generics: List[ast.ObjectDecl] = []
        while True:
            loc = self._loc()
            self._accept_keyword("constant")
            names = [self._expect_identifier().value]
            while self._accept(TokenKind.COMMA):
                names.append(self._expect_identifier().value)
            self._expect(TokenKind.COLON)
            type_mark = self._parse_type_mark()
            initial = None
            if self._accept(TokenKind.ASSIGN):
                initial = self.parse_expression()
            for n in names:
                generics.append(
                    ast.ObjectDecl(
                        name=n,
                        object_class=ast.ObjectClass.CONSTANT,
                        type_mark=type_mark,
                        initial=initial,
                        location=loc,
                    )
                )
            if not self._accept(TokenKind.SEMICOLON):
                return generics
            if self._check(TokenKind.RPAREN):
                return generics

    def _parse_port_list(self) -> List[ast.PortDecl]:
        ports: List[ast.PortDecl] = []
        while True:
            ports.extend(self._parse_port_decl())
            if not self._accept(TokenKind.SEMICOLON):
                return ports
            if self._check(TokenKind.RPAREN):
                return ports

    def _parse_port_decl(self) -> List[ast.PortDecl]:
        loc = self._loc()
        object_class = ast.ObjectClass.QUANTITY
        if self._accept_keyword("quantity"):
            object_class = ast.ObjectClass.QUANTITY
        elif self._accept_keyword("signal"):
            object_class = ast.ObjectClass.SIGNAL
        elif self._accept_keyword("terminal"):
            object_class = ast.ObjectClass.TERMINAL
        names = [self._expect_identifier().value]
        while self._accept(TokenKind.COMMA):
            names.append(self._expect_identifier().value)
        self._expect(TokenKind.COLON)
        mode = ast.PortMode.IN
        if self._accept_keyword("in"):
            mode = ast.PortMode.IN
        elif self._accept_keyword("out"):
            mode = ast.PortMode.OUT
        elif self._accept_keyword("inout"):
            mode = ast.PortMode.INOUT
        facet: Optional[str] = None
        if object_class is ast.ObjectClass.TERMINAL:
            # Terminal ports name a nature; the body facet may be declared
            # with ACROSS / THROUGH right in the port declaration.
            type_mark = self._parse_type_mark()
            if self._accept_keyword("across"):
                facet = "across"
            elif self._accept_keyword("through"):
                facet = "through"
        else:
            type_mark = self._parse_type_mark()
        annotations = self._parse_annotations()
        return [
            ast.PortDecl(
                name=n,
                object_class=object_class,
                mode=mode,
                type_mark=type_mark,
                annotations=list(annotations),
                facet=facet,
                location=loc,
            )
            for n in names
        ]

    def _parse_type_mark(self) -> ast.TypeMark:
        token = self._peek()
        if token.kind is TokenKind.KEYWORD and token.value in ("bit", "range"):
            name = self._advance().value
        else:
            name = self._expect_identifier().value
        if name == "bit_vector" and self._accept(TokenKind.LPAREN):
            low = self._parse_static_int()
            if not (self._accept_keyword("to") or self._accept_keyword("downto")):
                raise ParseError("expected TO or DOWNTO in bit_vector bounds",
                                 self._loc())
            high = self._parse_static_int()
            self._expect(TokenKind.RPAREN)
            lo, hi = min(low, high), max(low, high)
            return ast.TypeMark(name="bit_vector", element="bit", bounds=(lo, hi))
        if name == "real_vector" and self._accept(TokenKind.LPAREN):
            low = self._parse_static_int()
            if not self._accept_keyword("to"):
                raise ParseError("expected TO in real_vector bounds", self._loc())
            high = self._parse_static_int()
            self._expect(TokenKind.RPAREN)
            return ast.TypeMark(name="real_vector", element="real",
                                bounds=(low, high))
        return ast.TypeMark(name=name)

    def _parse_static_int(self) -> int:
        negative = bool(self._accept(TokenKind.MINUS))
        token = self._expect(TokenKind.INTEGER)
        value = int(token.value)
        return -value if negative else value

    # -- annotations -------------------------------------------------------------

    def _parse_physical_value(self) -> float:
        """A number with an optional unit suffix, scaled to SI base units."""
        negative = bool(self._accept(TokenKind.MINUS))
        token = self._peek()
        if token.kind is TokenKind.INTEGER:
            value = float(self._advance().value)
        elif token.kind is TokenKind.REAL:
            value = float(self._advance().value)
        else:
            raise ParseError(
                f"expected numeric value, found {token.value!r}", token.location
            )
        nxt = self._peek()
        if nxt.kind is TokenKind.IDENTIFIER and nxt.value in UNIT_SCALE:
            value *= UNIT_SCALE[self._advance().value]
        if negative:
            value = -value
        return value

    def _parse_annotations(self) -> List[ast.Annotation]:
        annotations: List[ast.Annotation] = []
        while True:
            loc = self._loc()
            if self._check_keyword("is") and self._peek(1).kind is TokenKind.IDENTIFIER:
                nxt = self._peek(1).value
                if nxt in ("voltage", "current"):
                    self._advance()  # is
                    kind_token = self._advance()
                    annotations.append(
                        ast.KindAnnotation(
                            kind=ast.SignalKind(kind_token.value), location=loc
                        )
                    )
                    continue
                break
            if self._accept_keyword("limited"):
                level: Optional[float] = None
                if self._accept_keyword("at"):
                    level = self._parse_physical_value()
                annotations.append(ast.LimitAnnotation(level=level, location=loc))
                continue
            if self._accept_keyword("drives"):
                load = self._parse_physical_value()
                self._expect_keyword("at")
                amplitude = self._parse_physical_value()
                self._expect_keyword("peak")
                annotations.append(
                    ast.DriveAnnotation(
                        load_ohms=load, amplitude=amplitude, location=loc
                    )
                )
                continue
            if self._accept_keyword("range"):
                low = self._parse_physical_value()
                self._expect_keyword("to")
                high = self._parse_physical_value()
                annotations.append(
                    ast.RangeAnnotation(low=low, high=high, location=loc)
                )
                continue
            if self._accept_keyword("frequency"):
                low = self._parse_physical_value()
                self._expect_keyword("to")
                high = self._parse_physical_value()
                annotations.append(
                    ast.FrequencyAnnotation(low=low, high=high, location=loc)
                )
                continue
            if self._accept_keyword("impedance"):
                ohms = self._parse_physical_value()
                annotations.append(ast.ImpedanceAnnotation(ohms=ohms, location=loc))
                continue
            break
        return annotations

    # -- architecture ---------------------------------------------------------------

    def _parse_architecture(self) -> ast.ArchitectureBody:
        loc = self._loc()
        self._expect_keyword("architecture")
        name = self._expect_identifier().value
        self._expect_keyword("of")
        entity_name = self._expect_identifier().value
        self._expect_keyword("is")
        declarations = self._parse_declarations()
        self._expect_keyword("begin")
        statements: List[ast.ConcurrentStmt] = []
        while not self._check_keyword("end"):
            if self._collect_errors and self._check(TokenKind.EOF):
                break
            start = self._pos
            try:
                statements.append(self._parse_concurrent_statement())
            except ParseError as err:
                self._recover(err)
                if self._pos == start and not self._check(TokenKind.EOF):
                    self._advance()
        self._expect_keyword("end")
        self._accept_keyword("architecture")
        if self._peek().kind is TokenKind.IDENTIFIER:
            self._advance()
        self._expect(TokenKind.SEMICOLON)
        return ast.ArchitectureBody(
            name=name,
            entity_name=entity_name,
            declarations=declarations,
            statements=statements,
            location=loc,
        )

    def _parse_package(self) -> ast.PackageDecl:
        loc = self._loc()
        self._expect_keyword("package")
        name = self._expect_identifier().value
        self._expect_keyword("is")
        declarations = self._parse_declarations()
        self._expect_keyword("end")
        self._accept_keyword("package")
        if self._peek().kind is TokenKind.IDENTIFIER:
            self._advance()
        self._expect(TokenKind.SEMICOLON)
        return ast.PackageDecl(name=name, declarations=declarations, location=loc)

    def _parse_declarations(self) -> List[ast.ObjectDecl]:
        declarations: List[ast.ObjectDecl] = []
        while self._check_keyword(
            "quantity", "signal", "constant", "variable", "terminal"
        ):
            declarations.extend(self._parse_object_decl())
        return declarations

    def _parse_object_decl(self) -> List[ast.ObjectDecl]:
        loc = self._loc()
        class_token = self._advance()
        object_class = ast.ObjectClass(class_token.value)
        names = [self._expect_identifier().value]
        while self._accept(TokenKind.COMMA):
            names.append(self._expect_identifier().value)
        self._expect(TokenKind.COLON)
        type_mark = self._parse_type_mark()
        initial = None
        if self._accept(TokenKind.ASSIGN):
            initial = self.parse_expression()
        annotations = self._parse_annotations()
        self._expect(TokenKind.SEMICOLON)
        return [
            ast.ObjectDecl(
                name=n,
                object_class=object_class,
                type_mark=type_mark,
                initial=initial,
                annotations=list(annotations),
                location=loc,
            )
            for n in names
        ]

    # -- concurrent statements ------------------------------------------------------

    def _parse_concurrent_statement(self) -> ast.ConcurrentStmt:
        label: Optional[str] = None
        if (
            self._peek().kind is TokenKind.IDENTIFIER
            and self._peek(1).kind is TokenKind.COLON
        ):
            label = self._advance().value
            self._advance()  # colon
        if self._check_keyword("if"):
            stmt: ast.ConcurrentStmt = self._parse_simultaneous_if()
        elif self._check_keyword("case"):
            stmt = self._parse_simultaneous_case()
        elif self._check_keyword("process"):
            stmt = self._parse_process()
        elif self._check_keyword("procedural"):
            stmt = self._parse_procedural()
        else:
            stmt = self._parse_simple_simultaneous()
        stmt.label = label
        return stmt

    def _parse_simple_simultaneous(self) -> ast.SimpleSimultaneous:
        loc = self._loc()
        lhs = self.parse_expression()
        self._expect(TokenKind.EQ_EQ)
        rhs = self.parse_expression()
        self._expect(TokenKind.SEMICOLON)
        return ast.SimpleSimultaneous(lhs=lhs, rhs=rhs, location=loc)

    def _parse_simultaneous_if(self) -> ast.SimultaneousIf:
        loc = self._loc()
        self._expect_keyword("if")
        branches: List[Tuple[ast.Expression, List[ast.ConcurrentStmt]]] = []
        else_body: List[ast.ConcurrentStmt] = []
        condition = self.parse_expression()
        self._expect_keyword("use")
        body = self._parse_simultaneous_body()
        branches.append((condition, body))
        while self._check_keyword("elsif"):
            self._advance()
            condition = self.parse_expression()
            self._expect_keyword("use")
            branches.append((condition, self._parse_simultaneous_body()))
        if self._accept_keyword("else"):
            else_body = self._parse_simultaneous_body()
        self._expect_keyword("end")
        self._expect_keyword("use")
        self._expect(TokenKind.SEMICOLON)
        return ast.SimultaneousIf(branches=branches, else_body=else_body, location=loc)

    def _parse_simultaneous_body(self) -> List[ast.ConcurrentStmt]:
        body: List[ast.ConcurrentStmt] = []
        while not self._check_keyword("elsif", "else", "end"):
            body.append(self._parse_concurrent_statement())
        return body

    def _parse_simultaneous_case(self) -> ast.SimultaneousCase:
        loc = self._loc()
        self._expect_keyword("case")
        selector = self.parse_expression()
        self._expect_keyword("use")
        alternatives: List[Tuple[List[ast.Expression], List[ast.ConcurrentStmt]]] = []
        others: Optional[List[ast.ConcurrentStmt]] = None
        while self._check_keyword("when"):
            self._advance()
            if self._accept_keyword("others"):
                self._expect(TokenKind.ARROW)
                others = self._parse_simultaneous_when_body()
                continue
            choices = [self.parse_expression()]
            while self._accept(TokenKind.BAR):
                choices.append(self.parse_expression())
            self._expect(TokenKind.ARROW)
            alternatives.append((choices, self._parse_simultaneous_when_body()))
        self._expect_keyword("end")
        self._expect_keyword("case")
        self._expect(TokenKind.SEMICOLON)
        return ast.SimultaneousCase(
            selector=selector, alternatives=alternatives, others=others, location=loc
        )

    def _parse_simultaneous_when_body(self) -> List[ast.ConcurrentStmt]:
        body: List[ast.ConcurrentStmt] = []
        while not self._check_keyword("when", "end"):
            body.append(self._parse_concurrent_statement())
        return body

    def _parse_process(self) -> ast.ProcessStmt:
        loc = self._loc()
        self._expect_keyword("process")
        sensitivity: List[ast.Expression] = []
        if self._accept(TokenKind.LPAREN):
            sensitivity.append(self.parse_expression())
            while self._accept(TokenKind.COMMA):
                sensitivity.append(self.parse_expression())
            self._expect(TokenKind.RPAREN)
        self._accept_keyword("is")
        declarations = self._parse_declarations()
        self._expect_keyword("begin")
        body = self._parse_sequential_statements(("end",))
        self._expect_keyword("end")
        self._expect_keyword("process")
        self._expect(TokenKind.SEMICOLON)
        return ast.ProcessStmt(
            sensitivity=sensitivity,
            declarations=declarations,
            body=body,
            location=loc,
        )

    def _parse_procedural(self) -> ast.ProceduralStmt:
        loc = self._loc()
        self._expect_keyword("procedural")
        self._accept_keyword("is")
        declarations = self._parse_declarations()
        self._expect_keyword("begin")
        body = self._parse_sequential_statements(("end",))
        self._expect_keyword("end")
        self._expect_keyword("procedural")
        self._expect(TokenKind.SEMICOLON)
        return ast.ProceduralStmt(declarations=declarations, body=body, location=loc)

    # -- sequential statements ---------------------------------------------------------

    def _parse_sequential_statements(
        self, stop_words: Tuple[str, ...]
    ) -> List[ast.SequentialStmt]:
        statements: List[ast.SequentialStmt] = []
        while not self._check_keyword(*stop_words):
            statements.append(self._parse_sequential_statement())
        return statements

    def _parse_sequential_statement(self) -> ast.SequentialStmt:
        loc = self._loc()
        if self._check_keyword("if"):
            return self._parse_if_statement()
        if self._check_keyword("case"):
            return self._parse_case_statement()
        if self._check_keyword("while"):
            return self._parse_while_statement()
        if self._check_keyword("for"):
            return self._parse_for_statement()
        if self._accept_keyword("null"):
            self._expect(TokenKind.SEMICOLON)
            return ast.NullStmt(location=loc)
        if self._accept_keyword("break"):
            elements: List[Tuple[str, ast.Expression]] = []
            if self._peek().kind is TokenKind.IDENTIFIER:
                name = self._advance().value
                self._expect(TokenKind.ARROW)
                elements.append((name, self.parse_expression()))
                while self._accept(TokenKind.COMMA):
                    name = self._expect_identifier().value
                    self._expect(TokenKind.ARROW)
                    elements.append((name, self.parse_expression()))
            self._expect(TokenKind.SEMICOLON)
            return ast.BreakStmt(elements=elements, location=loc)
        if self._check_keyword("wait"):
            detail_tokens = []
            while not self._check(TokenKind.SEMICOLON):
                detail_tokens.append(self._advance().value)
            self._expect(TokenKind.SEMICOLON)
            return ast.WaitStmt(detail=" ".join(detail_tokens), location=loc)
        # Assignment: target [index] (<= | :=) expr ;
        target = self._expect_identifier().value
        index: Optional[ast.Expression] = None
        if self._accept(TokenKind.LPAREN):
            index = self.parse_expression()
            self._expect(TokenKind.RPAREN)
        if self._accept(TokenKind.SIGNAL_ASSIGN):
            value = self.parse_expression()
            self._expect(TokenKind.SEMICOLON)
            if index is not None:
                raise ParseError("indexed signal assignment is not in VASS", loc)
            return ast.SignalAssignment(target=target, value=value, location=loc)
        if self._accept(TokenKind.ASSIGN):
            value = self.parse_expression()
            self._expect(TokenKind.SEMICOLON)
            return ast.VariableAssignment(
                target=target, value=value, index=index, location=loc
            )
        raise ParseError(
            f"expected ':=' or '<=' after {target!r}", self._loc()
        )

    def _parse_if_statement(self) -> ast.IfStmt:
        loc = self._loc()
        self._expect_keyword("if")
        branches: List[Tuple[ast.Expression, List[ast.SequentialStmt]]] = []
        condition = self.parse_expression()
        self._expect_keyword("then")
        body = self._parse_sequential_statements(("elsif", "else", "end"))
        branches.append((condition, body))
        while self._accept_keyword("elsif"):
            condition = self.parse_expression()
            self._expect_keyword("then")
            branches.append(
                (condition, self._parse_sequential_statements(("elsif", "else", "end")))
            )
        else_body: List[ast.SequentialStmt] = []
        if self._accept_keyword("else"):
            else_body = self._parse_sequential_statements(("end",))
        self._expect_keyword("end")
        self._expect_keyword("if")
        self._expect(TokenKind.SEMICOLON)
        return ast.IfStmt(branches=branches, else_body=else_body, location=loc)

    def _parse_case_statement(self) -> ast.CaseStmt:
        loc = self._loc()
        self._expect_keyword("case")
        selector = self.parse_expression()
        self._expect_keyword("is")
        alternatives: List[Tuple[List[ast.Expression], List[ast.SequentialStmt]]] = []
        others: Optional[List[ast.SequentialStmt]] = None
        while self._check_keyword("when"):
            self._advance()
            if self._accept_keyword("others"):
                self._expect(TokenKind.ARROW)
                others = self._parse_sequential_statements(("when", "end"))
                continue
            choices = [self.parse_expression()]
            while self._accept(TokenKind.BAR):
                choices.append(self.parse_expression())
            self._expect(TokenKind.ARROW)
            alternatives.append(
                (choices, self._parse_sequential_statements(("when", "end")))
            )
        self._expect_keyword("end")
        self._expect_keyword("case")
        self._expect(TokenKind.SEMICOLON)
        return ast.CaseStmt(
            selector=selector, alternatives=alternatives, others=others, location=loc
        )

    def _parse_while_statement(self) -> ast.WhileStmt:
        loc = self._loc()
        self._expect_keyword("while")
        condition = self.parse_expression()
        self._expect_keyword("loop")
        body = self._parse_sequential_statements(("end",))
        self._expect_keyword("end")
        self._expect_keyword("loop")
        self._expect(TokenKind.SEMICOLON)
        return ast.WhileStmt(condition=condition, body=body, location=loc)

    def _parse_for_statement(self) -> ast.ForStmt:
        loc = self._loc()
        self._expect_keyword("for")
        variable = self._expect_identifier().value
        self._expect_keyword("in")
        low = self.parse_expression()
        self._expect_keyword("to")
        high = self.parse_expression()
        self._expect_keyword("loop")
        body = self._parse_sequential_statements(("end",))
        self._expect_keyword("end")
        self._expect_keyword("loop")
        self._expect(TokenKind.SEMICOLON)
        return ast.ForStmt(
            variable=variable, low=low, high=high, body=body, location=loc
        )

    # -- expressions ------------------------------------------------------------------

    def parse_expression(self) -> ast.Expression:
        """Parse an expression (entry point, lowest precedence)."""
        return self._parse_logical()

    def _parse_logical(self) -> ast.Expression:
        left = self._parse_relation()
        while (
            self._peek().kind is TokenKind.KEYWORD
            and self._peek().value in _LOGICAL_OPS
        ):
            op_token = self._advance()
            right = self._parse_relation()
            left = ast.BinaryOp(
                operator=op_token.value,
                left=left,
                right=right,
                location=op_token.location,
            )
        return left

    def _parse_relation(self) -> ast.Expression:
        left = self._parse_simple_expression()
        kind = self._peek().kind
        if kind in _RELATIONAL_OPS:
            op_token = self._advance()
            right = self._parse_simple_expression()
            return ast.BinaryOp(
                operator=_RELATIONAL_OPS[kind],
                left=left,
                right=right,
                location=op_token.location,
            )
        return left

    def _parse_simple_expression(self) -> ast.Expression:
        loc = self._loc()
        if self._accept(TokenKind.MINUS):
            operand = self._parse_term()
            left: ast.Expression = ast.UnaryOp(
                operator="-", operand=operand, location=loc
            )
        elif self._accept(TokenKind.PLUS):
            left = self._parse_term()
        else:
            left = self._parse_term()
        while self._peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            op_token = self._advance()
            right = self._parse_term()
            left = ast.BinaryOp(
                operator=op_token.value,
                left=left,
                right=right,
                location=op_token.location,
            )
        return left

    def _parse_term(self) -> ast.Expression:
        left = self._parse_factor()
        while self._peek().kind in (TokenKind.STAR, TokenKind.SLASH) or (
            self._check_keyword("mod", "rem")
        ):
            op_token = self._advance()
            right = self._parse_factor()
            left = ast.BinaryOp(
                operator=op_token.value,
                left=left,
                right=right,
                location=op_token.location,
            )
        return left

    def _parse_factor(self) -> ast.Expression:
        loc = self._loc()
        if self._accept_keyword("not"):
            return ast.UnaryOp(
                operator="not", operand=self._parse_factor(), location=loc
            )
        if self._accept_keyword("abs"):
            return ast.UnaryOp(
                operator="abs", operand=self._parse_factor(), location=loc
            )
        primary = self._parse_primary()
        if self._accept(TokenKind.DOUBLE_STAR):
            exponent = self._parse_factor()
            return ast.BinaryOp(
                operator="**", left=primary, right=exponent, location=loc
            )
        return primary

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        loc = token.location
        expr: ast.Expression
        if token.kind is TokenKind.INTEGER:
            self._advance()
            expr = ast.IntegerLiteral(value=int(token.value), location=loc)
        elif token.kind is TokenKind.REAL:
            self._advance()
            expr = ast.RealLiteral(value=float(token.value), location=loc)
        elif token.kind is TokenKind.CHARACTER:
            self._advance()
            expr = ast.CharacterLiteral(value=token.value, location=loc)
        elif token.kind is TokenKind.STRING:
            self._advance()
            expr = ast.StringLiteral(value=token.value, location=loc)
        elif token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self.parse_expression()
            if self._check(TokenKind.COMMA):
                # A positional aggregate: (e1, e2, ...).
                elements = [expr]
                while self._accept(TokenKind.COMMA):
                    elements.append(self.parse_expression())
                expr = ast.Aggregate(elements=elements, location=loc)
            self._expect(TokenKind.RPAREN)
        elif token.kind is TokenKind.IDENTIFIER:
            self._advance()
            name = token.value
            if name == "true":
                expr = ast.BooleanLiteral(value=True, location=loc)
            elif name == "false":
                expr = ast.BooleanLiteral(value=False, location=loc)
            elif self._check(TokenKind.LPAREN):
                self._advance()
                arguments = [self.parse_expression()]
                while self._accept(TokenKind.COMMA):
                    arguments.append(self.parse_expression())
                self._expect(TokenKind.RPAREN)
                if name in PREDEFINED_FUNCTIONS:
                    expr = ast.FunctionCall(
                        name=name, arguments=arguments, location=loc
                    )
                elif len(arguments) == 1:
                    expr = ast.IndexedName(
                        prefix=ast.Name(identifier=name, location=loc),
                        index=arguments[0],
                        location=loc,
                    )
                else:
                    expr = ast.FunctionCall(
                        name=name, arguments=arguments, location=loc
                    )
            else:
                expr = ast.Name(identifier=name, location=loc)
        else:
            raise ParseError(
                f"expected expression, found {token.value!r}", loc
            )
        # Attribute suffixes: expr'attr or expr'attr(args); chainable.
        while self._check(TokenKind.APOSTROPHE):
            self._advance()
            attr_token = self._peek()
            if attr_token.kind not in (TokenKind.IDENTIFIER, TokenKind.KEYWORD):
                raise ParseError("expected attribute name after '", attr_token.location)
            self._advance()
            arguments = []
            if self._accept(TokenKind.LPAREN):
                arguments.append(self.parse_expression())
                while self._accept(TokenKind.COMMA):
                    arguments.append(self.parse_expression())
                self._expect(TokenKind.RPAREN)
            expr = ast.AttributeExpr(
                prefix=expr,
                attribute=attr_token.value,
                arguments=arguments,
                location=attr_token.location,
            )
        return expr


def count_ast_nodes(node: object) -> int:
    """Number of AST nodes in a (sub)tree, by generic dataclass walk."""
    import dataclasses

    total = 0
    stack = [node]
    while stack:
        obj = stack.pop()
        if isinstance(obj, (list, tuple)):
            stack.extend(obj)
            continue
        if dataclasses.is_dataclass(obj) and type(obj).__module__ == ast.__name__:
            total += 1
            for f in dataclasses.fields(obj):
                stack.append(getattr(obj, f.name))
    return total


def parse_source(text: str, filename: str = "<string>") -> ast.SourceFile:
    """Tokenize and parse VASS source text into an AST."""
    from repro.instrument import metrics, trace_phase

    if _fault_active("parse"):
        raise ParseError(
            "fault injection: forced parse error",
            SourceLocation(1, 1, filename),
        )
    tokens = tokenize(text, filename)
    with trace_phase("parse", filename=filename) as span:
        source_file = Parser(tokens, filename).parse_source_file()
        registry = metrics()
        if registry.enabled or _tracing_active():
            n_nodes = count_ast_nodes(source_file)
            span.annotate(ast_nodes=n_nodes)
            registry.inc("frontend.parser.runs")
            registry.inc("frontend.parser.ast_nodes", n_nodes)
    return source_file


def parse_source_collecting(
    text: str, filename: str = "<string>"
) -> Tuple[ast.SourceFile, List[VaseError]]:
    """Parse with error recovery, returning every syntax error found.

    The companion of :func:`parse_source` for ``vase check`` and
    ``vase batch``: instead of dying on the first syntax error, the
    parser resynchronizes at the next ``;`` or statement keyword and
    keeps going, so the returned list reports *all* of a file's errors
    in one run.  The returned :class:`~repro.vass.ast_nodes.SourceFile`
    holds whatever design units parsed cleanly (it is complete exactly
    when the error list is empty).  A lexer error still ends the run —
    tokenization is all-or-nothing — but is returned, not raised.
    """
    if _fault_active("parse"):
        return (
            ast.SourceFile(units=[], filename=filename),
            [ParseError(
                "fault injection: forced parse error",
                SourceLocation(1, 1, filename),
            )],
        )
    try:
        tokens = tokenize(text, filename)
    except LexerError as err:
        return ast.SourceFile(units=[], filename=filename), [err]
    parser = Parser(tokens, filename, collect_errors=True)
    source_file = parser.parse_source_file()
    return source_file, list(parser.errors)


def _tracing_active() -> bool:
    from repro.instrument import active_tracer

    return active_tracer() is not None


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone expression (used heavily by unit tests)."""
    parser = Parser(tokenize(text))
    expr = parser.parse_expression()
    trailing = parser._peek()
    if trailing.kind is not TokenKind.EOF:
        raise ParseError(
            f"unexpected trailing input {trailing.value!r}", trailing.location
        )
    return expr
