"""Pretty-printer for VASS ASTs.

Renders any AST produced by :mod:`repro.vass.parser` back into VASS
source text that parses to a structurally identical AST (the round-trip
property tested in ``tests/test_printer.py``).  Useful for emitting
transformed specifications, golden files and error reporting.
"""

from __future__ import annotations

from typing import List

from repro.vass import ast_nodes as ast

_INDENT = "  "

#: operator precedence, mirroring the parser's grammar levels
_PRECEDENCE = {
    "or": 1, "and": 1, "nand": 1, "nor": 1, "xor": 1, "xnor": 1,
    "=": 2, "/=": 2, "<": 2, "<=": 2, ">": 2, ">=": 2,
    "+": 3, "-": 3, "&": 3,
    "*": 4, "/": 4, "mod": 4, "rem": 4,
    "**": 5,
}


def print_expression(expr: ast.Expression, parent_level: int = 0) -> str:
    """Render an expression with minimal (but safe) parenthesization."""
    if isinstance(expr, ast.Name):
        return expr.identifier
    if isinstance(expr, ast.IntegerLiteral):
        return str(expr.value)
    if isinstance(expr, ast.RealLiteral):
        text = repr(expr.value)
        return text
    if isinstance(expr, ast.CharacterLiteral):
        return f"'{expr.value}'"
    if isinstance(expr, ast.StringLiteral):
        return '"' + expr.value.replace('"', '""') + '"'
    if isinstance(expr, ast.BooleanLiteral):
        return "TRUE" if expr.value else "FALSE"
    if isinstance(expr, ast.UnaryOp):
        if expr.operator in ("abs", "not"):
            return f"{expr.operator} ({print_expression(expr.operand)})"
        inner = print_expression(expr.operand, 6)
        text = f"{expr.operator}{inner}"
        # A sign is only legal at the head of a simple expression;
        # parenthesize to stay safe in any context.
        return f"({text})" if parent_level > 3 else text
    if isinstance(expr, ast.BinaryOp):
        level = _PRECEDENCE.get(expr.operator, 3)
        # Relational operators are non-associative in VHDL: both
        # children of the same level need parentheses.  Other levels are
        # left-associative: only the right child needs them.
        left_level = level + 1 if level == 2 else level
        left = print_expression(expr.left, left_level)
        right = print_expression(expr.right, level + 1)
        text = f"{left} {expr.operator} {right}"
        if level < parent_level:
            return f"({text})"
        return text
    if isinstance(expr, ast.FunctionCall):
        args = ", ".join(print_expression(a) for a in expr.arguments)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.AttributeExpr):
        prefix = print_expression(expr.prefix, 6)
        if not isinstance(
            expr.prefix, (ast.Name, ast.AttributeExpr, ast.IndexedName)
        ):
            prefix = f"({prefix})"
        if expr.arguments:
            args = ", ".join(print_expression(a) for a in expr.arguments)
            return f"{prefix}'{expr.attribute}({args})"
        return f"{prefix}'{expr.attribute}"
    if isinstance(expr, ast.IndexedName):
        return (
            f"{print_expression(expr.prefix, 6)}"
            f"({print_expression(expr.index)})"
        )
    if isinstance(expr, ast.Aggregate):
        inner = ", ".join(print_expression(e) for e in expr.elements)
        return f"({inner})"
    raise TypeError(f"cannot print {type(expr).__name__}")


def _print_type(mark: ast.TypeMark) -> str:
    if mark.bounds is not None:
        low, high = mark.bounds
        return f"{mark.name}({low} TO {high})"
    return mark.name


def _print_annotations(annotations: List[ast.Annotation]) -> str:
    parts: List[str] = []
    for ann in annotations:
        if isinstance(ann, ast.KindAnnotation):
            parts.append(f"IS {ann.kind.value}")
        elif isinstance(ann, ast.LimitAnnotation):
            if ann.level is None:
                parts.append("LIMITED")
            else:
                parts.append(f"LIMITED AT {ann.level!r}")
        elif isinstance(ann, ast.DriveAnnotation):
            parts.append(
                f"DRIVES {ann.load_ohms!r} ohm AT {ann.amplitude!r} PEAK"
            )
        elif isinstance(ann, ast.RangeAnnotation):
            parts.append(f"RANGE {ann.low!r} TO {ann.high!r}")
        elif isinstance(ann, ast.FrequencyAnnotation):
            parts.append(f"FREQUENCY {ann.low!r} TO {ann.high!r}")
        elif isinstance(ann, ast.ImpedanceAnnotation):
            parts.append(f"IMPEDANCE {ann.ohms!r}")
    return (" " + " ".join(parts)) if parts else ""


def _print_port(port: ast.PortDecl) -> str:
    mode = port.mode.value.upper()
    facet = f" {port.facet.upper()}" if port.facet else ""
    return (
        f"{port.object_class.value.upper()} {port.name} : {mode} "
        f"{_print_type(port.type_mark)}{facet}"
        f"{_print_annotations(port.annotations)}"
    )


def _print_object(decl: ast.ObjectDecl, indent: str) -> str:
    initial = (
        f" := {print_expression(decl.initial)}"
        if decl.initial is not None
        else ""
    )
    return (
        f"{indent}{decl.object_class.value.upper()} {decl.name} : "
        f"{_print_type(decl.type_mark)}{initial}"
        f"{_print_annotations(decl.annotations)};"
    )


def _print_sequential(
    stmts: List[ast.SequentialStmt], indent: str
) -> List[str]:
    lines: List[str] = []
    for stmt in stmts:
        if isinstance(stmt, ast.SignalAssignment):
            lines.append(
                f"{indent}{stmt.target} <= {print_expression(stmt.value)};"
            )
        elif isinstance(stmt, ast.VariableAssignment):
            target = stmt.target
            if stmt.index is not None:
                target += f"({print_expression(stmt.index)})"
            lines.append(
                f"{indent}{target} := {print_expression(stmt.value)};"
            )
        elif isinstance(stmt, ast.IfStmt):
            keyword = "IF"
            for condition, body in stmt.branches:
                lines.append(
                    f"{indent}{keyword} ({print_expression(condition)}) THEN"
                )
                lines.extend(_print_sequential(body, indent + _INDENT))
                keyword = "ELSIF"
            if stmt.else_body:
                lines.append(f"{indent}ELSE")
                lines.extend(
                    _print_sequential(stmt.else_body, indent + _INDENT)
                )
            lines.append(f"{indent}END IF;")
        elif isinstance(stmt, ast.CaseStmt):
            lines.append(
                f"{indent}CASE {print_expression(stmt.selector)} IS"
            )
            for choices, body in stmt.alternatives:
                text = " | ".join(print_expression(c) for c in choices)
                lines.append(f"{indent}{_INDENT}WHEN {text} =>")
                lines.extend(_print_sequential(body, indent + 2 * _INDENT))
            if stmt.others is not None:
                lines.append(f"{indent}{_INDENT}WHEN OTHERS =>")
                lines.extend(
                    _print_sequential(stmt.others, indent + 2 * _INDENT)
                )
            lines.append(f"{indent}END CASE;")
        elif isinstance(stmt, ast.WhileStmt):
            lines.append(
                f"{indent}WHILE ({print_expression(stmt.condition)}) LOOP"
            )
            lines.extend(_print_sequential(stmt.body, indent + _INDENT))
            lines.append(f"{indent}END LOOP;")
        elif isinstance(stmt, ast.ForStmt):
            lines.append(
                f"{indent}FOR {stmt.variable} IN "
                f"{print_expression(stmt.low)} TO "
                f"{print_expression(stmt.high)} LOOP"
            )
            lines.extend(_print_sequential(stmt.body, indent + _INDENT))
            lines.append(f"{indent}END LOOP;")
        elif isinstance(stmt, ast.NullStmt):
            lines.append(f"{indent}NULL;")
        elif isinstance(stmt, ast.BreakStmt):
            if stmt.elements:
                parts = ", ".join(
                    f"{name} => {print_expression(value)}"
                    for name, value in stmt.elements
                )
                lines.append(f"{indent}BREAK {parts};")
            else:
                lines.append(f"{indent}BREAK;")
        elif isinstance(stmt, ast.WaitStmt):
            detail = f" {stmt.detail}" if stmt.detail else ""
            lines.append(f"{indent}WAIT{detail};")
        else:
            raise TypeError(f"cannot print {type(stmt).__name__}")
    return lines


def _print_concurrent(
    stmts: List[ast.ConcurrentStmt], indent: str
) -> List[str]:
    lines: List[str] = []
    for stmt in stmts:
        label = f"{stmt.label}: " if stmt.label else ""
        if isinstance(stmt, ast.SimpleSimultaneous):
            lines.append(
                f"{indent}{label}{print_expression(stmt.lhs)} == "
                f"{print_expression(stmt.rhs)};"
            )
        elif isinstance(stmt, ast.SimultaneousIf):
            keyword = "IF"
            for condition, body in stmt.branches:
                lines.append(
                    f"{indent}{label if keyword == 'IF' else ''}{keyword} "
                    f"({print_expression(condition)}) USE"
                )
                lines.extend(_print_concurrent(body, indent + _INDENT))
                keyword = "ELSIF"
            if stmt.else_body:
                lines.append(f"{indent}ELSE")
                lines.extend(
                    _print_concurrent(stmt.else_body, indent + _INDENT)
                )
            lines.append(f"{indent}END USE;")
        elif isinstance(stmt, ast.SimultaneousCase):
            lines.append(
                f"{indent}{label}CASE {print_expression(stmt.selector)} USE"
            )
            for choices, body in stmt.alternatives:
                text = " | ".join(print_expression(c) for c in choices)
                lines.append(f"{indent}{_INDENT}WHEN {text} =>")
                lines.extend(_print_concurrent(body, indent + 2 * _INDENT))
            if stmt.others is not None:
                lines.append(f"{indent}{_INDENT}WHEN OTHERS =>")
                lines.extend(
                    _print_concurrent(stmt.others, indent + 2 * _INDENT)
                )
            lines.append(f"{indent}END CASE;")
        elif isinstance(stmt, ast.ProcessStmt):
            sensitivity = ", ".join(
                print_expression(e) for e in stmt.sensitivity
            )
            head = f"{indent}{label}PROCESS"
            if sensitivity:
                head += f" ({sensitivity})"
            lines.append(head + " IS")
            for decl in stmt.declarations:
                lines.append(_print_object(decl, indent + _INDENT))
            lines.append(f"{indent}BEGIN")
            lines.extend(_print_sequential(stmt.body, indent + _INDENT))
            lines.append(f"{indent}END PROCESS;")
        elif isinstance(stmt, ast.ProceduralStmt):
            lines.append(f"{indent}{label}PROCEDURAL IS")
            for decl in stmt.declarations:
                lines.append(_print_object(decl, indent + _INDENT))
            lines.append(f"{indent}BEGIN")
            lines.extend(_print_sequential(stmt.body, indent + _INDENT))
            lines.append(f"{indent}END PROCEDURAL;")
        else:
            raise TypeError(f"cannot print {type(stmt).__name__}")
    return lines


def print_source(source: ast.SourceFile) -> str:
    """Render a whole source file back into VASS text."""
    lines: List[str] = []
    for unit in source.units:
        if isinstance(unit, ast.EntityDecl):
            lines.append(f"ENTITY {unit.name} IS")
            if unit.generics:
                lines.append("GENERIC (")
                decls = [
                    f"{_INDENT}{g.name} : {_print_type(g.type_mark)}"
                    + (
                        f" := {print_expression(g.initial)}"
                        if g.initial is not None
                        else ""
                    )
                    for g in unit.generics
                ]
                lines.append(";\n".join(decls))
                lines.append(");")
            if unit.ports:
                lines.append("PORT (")
                ports = [_INDENT + _print_port(p) for p in unit.ports]
                lines.append(";\n".join(ports))
                lines.append(");")
            lines.append(f"END ENTITY {unit.name};")
        elif isinstance(unit, ast.ArchitectureBody):
            lines.append(
                f"ARCHITECTURE {unit.name} OF {unit.entity_name} IS"
            )
            for decl in unit.declarations:
                lines.append(_print_object(decl, _INDENT))
            lines.append("BEGIN")
            lines.extend(_print_concurrent(unit.statements, _INDENT))
            lines.append("END ARCHITECTURE;")
        elif isinstance(unit, ast.PackageDecl):
            lines.append(f"PACKAGE {unit.name} IS")
            for decl in unit.declarations:
                lines.append(_print_object(decl, _INDENT))
            lines.append(f"END PACKAGE;")
        lines.append("")
    return "\n".join(lines)
