"""Abstract syntax tree for VASS, the VHDL-AMS subset for synthesis.

The AST mirrors the structure described in Section 3 of the paper: design
files contain entity declarations and architecture bodies; architectures
contain object declarations and concurrent statements (simple and
conditional simultaneous statements, procedural statements and process
statements); sequential statements appear inside processes and
procedurals.  Expressions cover the VHDL-AMS operators plus the
attribute forms used by the subset (``'above``, ``'dot``, ``'integ``,
``'delayed``, ``'event``).

All nodes are plain dataclasses so they are cheap to construct in tests
and easy to traverse with ``isinstance`` dispatch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.diagnostics import NO_LOCATION, SourceLocation


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expression:
    """Base class for all expression nodes."""

    location: SourceLocation = field(default=NO_LOCATION, compare=False)


@dataclass
class Name(Expression):
    """A simple name reference (quantity, signal, variable, constant)."""

    identifier: str = ""

    def __str__(self) -> str:
        return self.identifier


@dataclass
class IntegerLiteral(Expression):
    value: int = 0

    def __str__(self) -> str:
        return str(self.value)


@dataclass
class RealLiteral(Expression):
    value: float = 0.0

    def __str__(self) -> str:
        return repr(self.value)


@dataclass
class CharacterLiteral(Expression):
    """E.g. ``'1'`` or ``'0'`` of type bit."""

    value: str = "0"

    def __str__(self) -> str:
        return f"'{self.value}'"


@dataclass
class StringLiteral(Expression):
    value: str = ""

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass
class BooleanLiteral(Expression):
    value: bool = False

    def __str__(self) -> str:
        return "TRUE" if self.value else "FALSE"


@dataclass
class UnaryOp(Expression):
    """Unary operators: ``-``, ``+``, ``not``, ``abs``."""

    operator: str = "-"
    operand: Expression = field(default_factory=Expression)

    def __str__(self) -> str:
        return f"({self.operator} {self.operand})"


@dataclass
class BinaryOp(Expression):
    """Binary operators: arithmetic, relational and logical."""

    operator: str = "+"
    left: Expression = field(default_factory=Expression)
    right: Expression = field(default_factory=Expression)

    def __str__(self) -> str:
        return f"({self.left} {self.operator} {self.right})"


@dataclass
class FunctionCall(Expression):
    """Call of a predefined function, e.g. ``log(x)``, ``exp(x)``."""

    name: str = ""
    arguments: List[Expression] = field(default_factory=list)

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.arguments)
        return f"{self.name}({args})"


@dataclass
class AttributeExpr(Expression):
    """An attribute applied to a name: ``line'above(vth)``, ``x'dot``."""

    prefix: Expression = field(default_factory=Expression)
    attribute: str = ""
    arguments: List[Expression] = field(default_factory=list)

    def __str__(self) -> str:
        if self.arguments:
            args = ", ".join(str(a) for a in self.arguments)
            return f"{self.prefix}'{self.attribute}({args})"
        return f"{self.prefix}'{self.attribute}"


@dataclass
class IndexedName(Expression):
    """An indexed name, e.g. ``v(3)`` for composite quantities."""

    prefix: Expression = field(default_factory=Expression)
    index: Expression = field(default_factory=Expression)

    def __str__(self) -> str:
        return f"{self.prefix}({self.index})"


@dataclass
class Aggregate(Expression):
    """A positional aggregate, e.g. ``(1.0, 0.5, 2.0)``.

    VASS uses aggregates as the numerator/denominator coefficient
    vectors of the ``'ltf`` attribute (ascending powers of s).
    """

    elements: List[Expression] = field(default_factory=list)

    def __str__(self) -> str:
        inner = ", ".join(str(e) for e in self.elements)
        return f"({inner})"


# ---------------------------------------------------------------------------
# Annotations (the VASS declarative mechanism, Section 3)
# ---------------------------------------------------------------------------


class SignalKind(enum.Enum):
    """Physical facet of an analog signal."""

    VOLTAGE = "voltage"
    CURRENT = "current"


@dataclass
class Annotation:
    """Base class for VASS declarative annotations."""

    location: SourceLocation = field(default=NO_LOCATION, compare=False)


@dataclass
class KindAnnotation(Annotation):
    """``IS voltage`` / ``IS current`` — the facet of a quantity port."""

    kind: SignalKind = SignalKind.VOLTAGE


@dataclass
class LimitAnnotation(Annotation):
    """``LIMITED [AT <level>]`` — the output saturates at ``level`` volts."""

    level: Optional[float] = None


@dataclass
class DriveAnnotation(Annotation):
    """``DRIVES <ohms> AT <amplitude> PEAK`` — external load requirement."""

    load_ohms: float = 0.0
    amplitude: float = 0.0


@dataclass
class RangeAnnotation(Annotation):
    """``RANGE <lo> TO <hi>`` — expected value range of a quantity."""

    low: float = 0.0
    high: float = 0.0


@dataclass
class FrequencyAnnotation(Annotation):
    """``FREQUENCY <lo> TO <hi>`` — signal band, in hertz."""

    low: float = 0.0
    high: float = 0.0


@dataclass
class ImpedanceAnnotation(Annotation):
    """``IMPEDANCE <ohms>`` — impedance at a terminal/quantity port."""

    ohms: float = 0.0


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


class PortMode(enum.Enum):
    IN = "in"
    OUT = "out"
    INOUT = "inout"


class ObjectClass(enum.Enum):
    """Object class of a declared name."""

    QUANTITY = "quantity"
    SIGNAL = "signal"
    TERMINAL = "terminal"
    CONSTANT = "constant"
    VARIABLE = "variable"


@dataclass
class TypeMark:
    """A (possibly composite) type indication."""

    name: str = "real"
    # For array types: element type name and static index bounds.
    element: Optional[str] = None
    bounds: Optional[Tuple[int, int]] = None

    def is_nature(self) -> bool:
        """True for types representing analog (nature) values."""
        if self.name in ("real", "voltage", "current"):
            return True
        if self.element in ("real", "voltage", "current"):
            return True
        return False

    def is_discrete(self) -> bool:
        return self.name in ("bit", "bit_vector", "boolean", "integer")

    def __str__(self) -> str:
        if self.bounds is not None:
            return f"{self.name}({self.bounds[0]} to {self.bounds[1]})"
        return self.name


@dataclass
class PortDecl:
    """A single port of an entity."""

    name: str
    object_class: ObjectClass
    mode: PortMode
    type_mark: TypeMark
    annotations: List[Annotation] = field(default_factory=list)
    # For terminal ports: which facet ("across"/"through") the body uses.
    facet: Optional[str] = None
    location: SourceLocation = field(default=NO_LOCATION, compare=False)

    def annotation(self, cls: type) -> Optional[Annotation]:
        """First annotation of the given class, if any."""
        for ann in self.annotations:
            if isinstance(ann, cls):
                return ann
        return None


@dataclass
class ObjectDecl:
    """A declaration inside an architecture, process or procedural."""

    name: str
    object_class: ObjectClass
    type_mark: TypeMark
    initial: Optional[Expression] = None
    annotations: List[Annotation] = field(default_factory=list)
    location: SourceLocation = field(default=NO_LOCATION, compare=False)


@dataclass
class EntityDecl:
    """An entity declaration with its port list."""

    name: str
    ports: List[PortDecl] = field(default_factory=list)
    generics: List[ObjectDecl] = field(default_factory=list)
    location: SourceLocation = field(default=NO_LOCATION, compare=False)

    def port(self, name: str) -> Optional[PortDecl]:
        for p in self.ports:
            if p.name == name:
                return p
        return None


# ---------------------------------------------------------------------------
# Sequential statements (inside processes and procedurals)
# ---------------------------------------------------------------------------


@dataclass
class SequentialStmt:
    """Base class for sequential statements."""

    location: SourceLocation = field(default=NO_LOCATION, compare=False)


@dataclass
class SignalAssignment(SequentialStmt):
    """``target <= expr;`` inside a process."""

    target: str = ""
    value: Expression = field(default_factory=Expression)


@dataclass
class VariableAssignment(SequentialStmt):
    """``target := expr;`` inside a process or procedural."""

    target: str = ""
    value: Expression = field(default_factory=Expression)
    # Optional index for composite targets: target(i) := ...
    index: Optional[Expression] = None


@dataclass
class IfStmt(SequentialStmt):
    """``if/elsif/else`` with one body per branch."""

    branches: List[Tuple[Expression, List[SequentialStmt]]] = field(
        default_factory=list
    )
    else_body: List[SequentialStmt] = field(default_factory=list)


@dataclass
class CaseStmt(SequentialStmt):
    """``case selector is when choice => body ...``"""

    selector: Expression = field(default_factory=Expression)
    alternatives: List[Tuple[List[Expression], List[SequentialStmt]]] = field(
        default_factory=list
    )
    # ``when others`` body, or None if absent.
    others: Optional[List[SequentialStmt]] = None


@dataclass
class WhileStmt(SequentialStmt):
    """``while cond loop body end loop;`` — sampling semantics in VASS."""

    condition: Expression = field(default_factory=Expression)
    body: List[SequentialStmt] = field(default_factory=list)


@dataclass
class ForStmt(SequentialStmt):
    """``for i in lo to hi loop ...`` — bounds must be static in VASS."""

    variable: str = ""
    low: Expression = field(default_factory=Expression)
    high: Expression = field(default_factory=Expression)
    body: List[SequentialStmt] = field(default_factory=list)


@dataclass
class NullStmt(SequentialStmt):
    """``null;``"""


@dataclass
class BreakStmt(SequentialStmt):
    """``break;`` — discontinuity announcement (accepted, no-op for synth)."""

    elements: List[Tuple[str, Expression]] = field(default_factory=list)


@dataclass
class WaitStmt(SequentialStmt):
    """``wait ...`` — parsed so the restriction checker can reject it."""

    detail: str = ""


# ---------------------------------------------------------------------------
# Concurrent statements
# ---------------------------------------------------------------------------


@dataclass
class ConcurrentStmt:
    """Base class for concurrent statements."""

    label: Optional[str] = None
    location: SourceLocation = field(default=NO_LOCATION, compare=False)


@dataclass
class SimpleSimultaneous(ConcurrentStmt):
    """``lhs == rhs;`` — one equation of the DAE set."""

    lhs: Expression = field(default_factory=Expression)
    rhs: Expression = field(default_factory=Expression)

    def __str__(self) -> str:
        return f"{self.lhs} == {self.rhs}"


@dataclass
class SimultaneousIf(ConcurrentStmt):
    """``if cond use <equations> [elsif ...] [else ...] end use;``"""

    branches: List[Tuple[Expression, List["ConcurrentStmt"]]] = field(
        default_factory=list
    )
    else_body: List["ConcurrentStmt"] = field(default_factory=list)


@dataclass
class SimultaneousCase(ConcurrentStmt):
    """``case selector use when choice => <equations> ... end case;``"""

    selector: Expression = field(default_factory=Expression)
    alternatives: List[Tuple[List[Expression], List["ConcurrentStmt"]]] = field(
        default_factory=list
    )
    others: Optional[List["ConcurrentStmt"]] = None


@dataclass
class ProceduralStmt(ConcurrentStmt):
    """``procedural is <decls> begin <sequential statements> end procedural;``

    Explicit continuous-time behavior: a pure functional block computing
    analog outputs from inputs with no state between invocations.
    """

    declarations: List[ObjectDecl] = field(default_factory=list)
    body: List[SequentialStmt] = field(default_factory=list)


@dataclass
class ProcessStmt(ConcurrentStmt):
    """``process (<sensitivity>) is <decls> begin <stmts> end process;``"""

    sensitivity: List[Expression] = field(default_factory=list)
    declarations: List[ObjectDecl] = field(default_factory=list)
    body: List[SequentialStmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Design units
# ---------------------------------------------------------------------------


@dataclass
class ArchitectureBody:
    """An architecture of an entity."""

    name: str
    entity_name: str
    declarations: List[ObjectDecl] = field(default_factory=list)
    statements: List[ConcurrentStmt] = field(default_factory=list)
    location: SourceLocation = field(default=NO_LOCATION, compare=False)


@dataclass
class PackageDecl:
    """A package of constants (the only package contents VASS needs)."""

    name: str
    declarations: List[ObjectDecl] = field(default_factory=list)
    location: SourceLocation = field(default=NO_LOCATION, compare=False)


DesignUnit = Union[EntityDecl, ArchitectureBody, PackageDecl]


@dataclass
class SourceFile:
    """A parsed VASS source file: a sequence of design units."""

    units: List[DesignUnit] = field(default_factory=list)
    filename: str = "<string>"

    @property
    def entities(self) -> List[EntityDecl]:
        return [u for u in self.units if isinstance(u, EntityDecl)]

    @property
    def architectures(self) -> List[ArchitectureBody]:
        return [u for u in self.units if isinstance(u, ArchitectureBody)]

    @property
    def packages(self) -> List[PackageDecl]:
        return [u for u in self.units if isinstance(u, PackageDecl)]

    def entity(self, name: str) -> Optional[EntityDecl]:
        for e in self.entities:
            if e.name == name:
                return e
        return None

    def architecture_of(
        self, entity_name: str, architecture_name: Optional[str] = None
    ) -> Optional[ArchitectureBody]:
        """The (named) architecture of ``entity_name``.

        Without a name the *last* architecture wins, matching VHDL's
        default binding rule (most recently analyzed).
        """
        matches = [a for a in self.architectures if a.entity_name == entity_name]
        if architecture_name is not None:
            for a in matches:
                if a.name == architecture_name:
                    return a
            return None
        return matches[-1] if matches else None


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk_expression(expr: Expression) -> List[Expression]:
    """All sub-expressions of ``expr`` in pre-order (including itself)."""
    out: List[Expression] = [expr]
    if isinstance(expr, UnaryOp):
        out.extend(walk_expression(expr.operand))
    elif isinstance(expr, BinaryOp):
        out.extend(walk_expression(expr.left))
        out.extend(walk_expression(expr.right))
    elif isinstance(expr, FunctionCall):
        for arg in expr.arguments:
            out.extend(walk_expression(arg))
    elif isinstance(expr, AttributeExpr):
        out.extend(walk_expression(expr.prefix))
        for arg in expr.arguments:
            out.extend(walk_expression(arg))
    elif isinstance(expr, IndexedName):
        out.extend(walk_expression(expr.prefix))
        out.extend(walk_expression(expr.index))
    elif isinstance(expr, Aggregate):
        for element in expr.elements:
            out.extend(walk_expression(element))
    return out


def referenced_names(expr: Expression) -> List[str]:
    """Names referenced anywhere inside ``expr`` (in pre-order)."""
    return [
        node.identifier for node in walk_expression(expr) if isinstance(node, Name)
    ]


def walk_sequential(stmts: Sequence[SequentialStmt]) -> List[SequentialStmt]:
    """All sequential statements in ``stmts`` recursively, pre-order."""
    out: List[SequentialStmt] = []
    for stmt in stmts:
        out.append(stmt)
        if isinstance(stmt, IfStmt):
            for _, body in stmt.branches:
                out.extend(walk_sequential(body))
            out.extend(walk_sequential(stmt.else_body))
        elif isinstance(stmt, CaseStmt):
            for _, body in stmt.alternatives:
                out.extend(walk_sequential(body))
            if stmt.others is not None:
                out.extend(walk_sequential(stmt.others))
        elif isinstance(stmt, (WhileStmt, ForStmt)):
            out.extend(walk_sequential(stmt.body))
    return out


def walk_concurrent(stmts: Sequence[ConcurrentStmt]) -> List[ConcurrentStmt]:
    """All concurrent statements in ``stmts`` recursively, pre-order."""
    out: List[ConcurrentStmt] = []
    for stmt in stmts:
        out.append(stmt)
        if isinstance(stmt, SimultaneousIf):
            for _, body in stmt.branches:
                out.extend(walk_concurrent(body))
            out.extend(walk_concurrent(stmt.else_body))
        elif isinstance(stmt, SimultaneousCase):
            for _, body in stmt.alternatives:
                out.extend(walk_concurrent(body))
            if stmt.others is not None:
                out.extend(walk_concurrent(stmt.others))
    return out
