"""Hand-written lexer for VASS, the VHDL-AMS subset for synthesis.

The lexer follows VHDL lexical rules: identifiers and reserved words are
case-insensitive, comments run from ``--`` to end of line, character
literals are single characters between apostrophes, and the apostrophe
also introduces attribute names (``line'ABOVE``).  Disambiguation between
the two uses of ``'`` follows the VHDL rule: an apostrophe directly after
an identifier, right parenthesis or literal starts an attribute, otherwise
it starts a character literal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.diagnostics import LexerError, SourceLocation


class TokenKind(enum.Enum):
    """Categories of VASS tokens."""

    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    INTEGER = "integer"
    REAL = "real"
    STRING = "string"
    CHARACTER = "character"
    BIT_STRING = "bit_string"

    # Compound delimiters.
    ARROW = "=>"
    ASSIGN = ":="
    SIGNAL_ASSIGN = "<="
    EQ_EQ = "=="
    GE = ">="
    NE = "/="
    BOX = "<>"
    DOUBLE_STAR = "**"

    # Simple delimiters.
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    SEMICOLON = ";"
    COLON = ":"
    COMMA = ","
    DOT = "."
    AMPERSAND = "&"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    LT = "<"
    GT = ">"
    EQ = "="
    BAR = "|"
    APOSTROPHE = "'"

    EOF = "<eof>"


#: Reserved words of the VASS subset (a superset of what the paper's
#: examples use; all are VHDL-AMS reserved words or VASS annotations).
KEYWORDS = frozenset(
    {
        "abs",
        "above",
        "across",
        "after",
        "all",
        "and",
        "architecture",
        "array",
        "at",
        "begin",
        "bit",
        "body",
        "break",
        "case",
        "constant",
        "downto",
        "drives",
        "else",
        "elsif",
        "end",
        "entity",
        "exit",
        "for",
        "frequency",
        "function",
        "generic",
        "if",
        "impedance",
        "in",
        "inout",
        "is",
        "kind",
        "library",
        "limited",
        "loop",
        "mod",
        "nand",
        "nature",
        "nor",
        "not",
        "null",
        "of",
        "or",
        "others",
        "out",
        "package",
        "peak",
        "port",
        "procedural",
        "procedure",
        "process",
        "quantity",
        "range",
        "rem",
        "report",
        "return",
        "severity",
        "signal",
        "subtype",
        "terminal",
        "then",
        "through",
        "to",
        "type",
        "units",
        "until",
        "use",
        "variable",
        "wait",
        "when",
        "while",
        "with",
        "xnor",
        "xor",
    }
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` is the normalized text: lower-case for identifiers and
    keywords (VHDL is case-insensitive), verbatim for literals.
    """

    kind: TokenKind
    value: str
    location: SourceLocation

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value == word

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.name}({self.value!r})@{self.location}"


_SIMPLE_DELIMITERS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMICOLON,
    ",": TokenKind.COMMA,
    "&": TokenKind.AMPERSAND,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "|": TokenKind.BAR,
}


class Lexer:
    """Converts VASS source text into a list of tokens."""

    def __init__(self, text: str, filename: str = "<string>"):
        self._text = text
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._column = 1
        # Tracks whether a following apostrophe means "attribute", i.e.
        # the previous token can be an attribute prefix.
        self._prev_allows_attribute = False

    # -- low-level helpers -------------------------------------------------

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._column, self._filename)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._text):
            return ""
        return self._text[index]

    def _advance(self, count: int = 1) -> str:
        consumed = self._text[self._pos : self._pos + count]
        for ch in consumed:
            if ch == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return consumed

    def _skip_whitespace_and_comments(self) -> None:
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n\f\v":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            else:
                return

    # -- token scanners ----------------------------------------------------

    def _scan_identifier(self) -> Token:
        loc = self._location()
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        raw = self._text[start : self._pos]
        if raw.endswith("_") or "__" in raw:
            raise LexerError(f"malformed identifier {raw!r}", loc)
        lowered = raw.lower()
        kind = TokenKind.KEYWORD if lowered in KEYWORDS else TokenKind.IDENTIFIER
        return Token(kind, lowered, loc)

    def _scan_number(self) -> Token:
        loc = self._location()
        start = self._pos
        is_real = False

        def scan_digits() -> None:
            if not self._peek().isdigit():
                raise LexerError("digit expected in numeric literal", self._location())
            while self._peek().isdigit() or self._peek() == "_":
                self._advance()

        scan_digits()
        if self._peek() == "." and self._peek(1).isdigit():
            is_real = True
            self._advance()
            scan_digits()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_real = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            scan_digits()
        raw = self._text[start : self._pos].replace("_", "")
        kind = TokenKind.REAL if is_real else TokenKind.INTEGER
        return Token(kind, raw, loc)

    def _scan_string(self) -> Token:
        loc = self._location()
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexerError("unterminated string literal", loc)
            if ch == '"':
                if self._peek(1) == '"':  # doubled quote escapes itself
                    chars.append('"')
                    self._advance(2)
                    continue
                self._advance()
                break
            chars.append(ch)
            self._advance()
        return Token(TokenKind.STRING, "".join(chars), loc)

    def _scan_character(self) -> Token:
        loc = self._location()
        self._advance()  # opening apostrophe
        ch = self._peek()
        if not ch or ch == "\n":
            raise LexerError("unterminated character literal", loc)
        self._advance()
        if self._peek() != "'":
            raise LexerError("character literal must be a single character", loc)
        self._advance()
        return Token(TokenKind.CHARACTER, ch, loc)

    # -- main loop ----------------------------------------------------------

    def next_token(self) -> Token:
        """Scan and return the next token (EOF token at end of input)."""
        self._skip_whitespace_and_comments()
        loc = self._location()
        ch = self._peek()

        if not ch:
            token = Token(TokenKind.EOF, "", loc)
        elif ch.isalpha():
            token = self._scan_identifier()
        elif ch.isdigit():
            token = self._scan_number()
        elif ch == '"':
            token = self._scan_string()
        elif ch == "'":
            if self._prev_allows_attribute:
                self._advance()
                token = Token(TokenKind.APOSTROPHE, "'", loc)
            else:
                token = self._scan_character()
        elif ch == "=" and self._peek(1) == "=":
            self._advance(2)
            token = Token(TokenKind.EQ_EQ, "==", loc)
        elif ch == "=" and self._peek(1) == ">":
            self._advance(2)
            token = Token(TokenKind.ARROW, "=>", loc)
        elif ch == ":" and self._peek(1) == "=":
            self._advance(2)
            token = Token(TokenKind.ASSIGN, ":=", loc)
        elif ch == "<" and self._peek(1) == "=":
            self._advance(2)
            token = Token(TokenKind.SIGNAL_ASSIGN, "<=", loc)
        elif ch == "<" and self._peek(1) == ">":
            self._advance(2)
            token = Token(TokenKind.BOX, "<>", loc)
        elif ch == ">" and self._peek(1) == "=":
            self._advance(2)
            token = Token(TokenKind.GE, ">=", loc)
        elif ch == "/" and self._peek(1) == "=":
            self._advance(2)
            token = Token(TokenKind.NE, "/=", loc)
        elif ch == "*" and self._peek(1) == "*":
            self._advance(2)
            token = Token(TokenKind.DOUBLE_STAR, "**", loc)
        elif ch in _SIMPLE_DELIMITERS:
            self._advance()
            token = Token(_SIMPLE_DELIMITERS[ch], ch, loc)
        elif ch == ":":
            self._advance()
            token = Token(TokenKind.COLON, ":", loc)
        elif ch == ".":
            self._advance()
            token = Token(TokenKind.DOT, ".", loc)
        elif ch == "*":
            self._advance()
            token = Token(TokenKind.STAR, "*", loc)
        elif ch == "/":
            self._advance()
            token = Token(TokenKind.SLASH, "/", loc)
        elif ch == "<":
            self._advance()
            token = Token(TokenKind.LT, "<", loc)
        elif ch == ">":
            self._advance()
            token = Token(TokenKind.GT, ">", loc)
        elif ch == "=":
            self._advance()
            token = Token(TokenKind.EQ, "=", loc)
        else:
            raise LexerError(f"unexpected character {ch!r}", loc)

        self._prev_allows_attribute = token.kind in (
            TokenKind.IDENTIFIER,
            TokenKind.RPAREN,
            TokenKind.RBRACKET,
            TokenKind.STRING,
            TokenKind.CHARACTER,
            TokenKind.INTEGER,
            TokenKind.REAL,
        ) or (token.kind is TokenKind.KEYWORD and token.value == "all")
        return token

    def tokenize(self) -> List[Token]:
        """Return all tokens of the input, ending with an EOF token."""
        tokens: List[Token] = []
        while True:
            token = self.next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens


def tokenize(text: str, filename: str = "<string>") -> List[Token]:
    """Convenience wrapper: tokenize ``text`` into a token list."""
    from repro.instrument import metrics, trace_phase

    with trace_phase("lex", filename=filename) as span:
        tokens = Lexer(text, filename).tokenize()
        span.annotate(tokens=len(tokens))
    registry = metrics()
    if registry.enabled:
        registry.inc("frontend.lexer.runs")
        registry.inc("frontend.lexer.tokens", len(tokens))
    return tokens
