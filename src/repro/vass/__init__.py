"""VASS: the VHDL-AMS subset for behavioral synthesis (paper Section 3)."""

from repro.vass.lexer import Lexer, Token, TokenKind, tokenize
from repro.vass.parser import Parser, parse_expression, parse_source
from repro.vass.printer import print_expression, print_source
from repro.vass.semantics import (
    AnalyzedDesign,
    Scope,
    Symbol,
    ValueType,
    analyze,
    analyze_source,
    eval_static,
    is_static,
)

__all__ = [
    "AnalyzedDesign",
    "Lexer",
    "Parser",
    "Scope",
    "Symbol",
    "Token",
    "TokenKind",
    "ValueType",
    "analyze",
    "analyze_source",
    "eval_static",
    "is_static",
    "parse_expression",
    "print_expression",
    "print_source",
    "parse_source",
    "tokenize",
]
