"""Reproduction of "A VHDL-AMS Compiler and Architecture Generator for
Behavioral Synthesis of Analog Systems" (Doboli & Vemuri, DATE 1999).

The public API mirrors the paper's design flow (Figure 1):

* :func:`repro.vass.parse_source` / :func:`repro.vass.analyze_source` —
  the VASS frontend (Section 3);
* :func:`repro.compiler.compile_design` — VASS to VHIF (Section 4);
* :func:`repro.synth.map_sfg` — branch-and-bound architecture
  generation (Section 5);
* :func:`repro.flow.synthesize` — the whole pipeline in one call;
* :mod:`repro.spice` — netlisting and circuit-level simulation
  (Section 6's experiments);
* :mod:`repro.apps` — the five Table-1 applications.

The stable entry points for embedding the flow are
:func:`synthesize` with a :class:`FlowOptions` bag — including
:class:`ParallelOptions`, which picks the execution backend
(``serial`` / ``thread`` / ``process``) for solver exploration and
batch runs — returning a :class:`SynthesisResult`; every error the
flow raises deliberately derives from :class:`VaseError`.
"""

from repro.compiler import CompilerOptions, compile_design
from repro.diagnostics import VaseError
from repro.flow import FlowOptions, SynthesisResult, synthesize
from repro.instrument import Tracer, metrics, trace_phase, tracing
from repro.pipeline import ParallelOptions
from repro.vass import analyze_source, parse_source
from repro.verify import EquivalenceReport, verify_equivalence

__version__ = "1.0.0"

__all__ = [
    "CompilerOptions",
    "EquivalenceReport",
    "FlowOptions",
    "ParallelOptions",
    "SynthesisResult",
    "Tracer",
    "VaseError",
    "analyze_source",
    "compile_design",
    "metrics",
    "parse_source",
    "synthesize",
    "trace_phase",
    "tracing",
    "verify_equivalence",
    "__version__",
]
