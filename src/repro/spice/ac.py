"""Small-signal AC analysis for the MNA substrate.

Complements the transient engine with frequency-domain analysis: the
circuit is linearized about its DC operating point and solved with
complex phasors over a frequency sweep — SPICE's ``.AC`` analysis.
Used to verify filter responses and op-amp macromodel bandwidth.

Nonlinear elements are linearized at the operating point:

* :class:`~repro.spice.mna.SaturatingVcvs` becomes a VCVS with the
  tanh's local slope;
* :class:`~repro.spice.mna.FunctionSource` becomes a linear combination
  of its inputs with the numeric partial derivatives;
* switches take their operating-point state (on/off resistance).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.diagnostics import SimulationError
from repro.instrument import metrics, trace_phase
from repro.robust.faultinject import fault_active
from repro.robust.guards import (
    ILL_CONDITION_THRESHOLD,
    NumericalWarning,
    check_finite,
    condition_estimate,
    singular_suspects,
)
from repro.spice.mna import (
    Capacitor,
    Circuit,
    CurrentSource,
    FunctionSource,
    MnaSolver,
    Resistor,
    SaturatingVcvs,
    Switch,
    Vccs,
    Vcvs,
    VoltageSource,
)


@dataclass
class AcResult:
    """Complex node voltages over the swept frequencies."""

    frequencies: np.ndarray
    voltages: Dict[str, np.ndarray]

    def magnitude(self, node: str) -> np.ndarray:
        return np.abs(self.voltages[node])

    def magnitude_db(self, node: str) -> np.ndarray:
        return 20.0 * np.log10(np.maximum(self.magnitude(node), 1e-30))

    def phase_deg(self, node: str) -> np.ndarray:
        return np.degrees(np.angle(self.voltages[node]))

    def cutoff_frequency(self, node: str, drop_db: float = 3.0) -> float:
        """Frequency where the response falls ``drop_db`` below its
        low-frequency value (log-interpolated between sweep points)."""
        mags = self.magnitude_db(node)
        reference = mags[0]
        target = reference - drop_db
        below = np.nonzero(mags <= target)[0]
        if len(below) == 0:
            return float("inf")
        index = int(below[0])
        if index == 0:
            return float(self.frequencies[0])
        f0, f1 = self.frequencies[index - 1], self.frequencies[index]
        m0, m1 = mags[index - 1], mags[index]
        if m1 == m0:
            return float(f1)
        fraction = (target - m0) / (m1 - m0)
        return float(10 ** (
            math.log10(f0) + fraction * (math.log10(f1) - math.log10(f0))
        ))

    def peak_frequency(self, node: str) -> float:
        """Frequency of the magnitude peak (resonance detection)."""
        mags = self.magnitude(node)
        return float(self.frequencies[int(np.argmax(mags))])


class AcSolver:
    """Linearized frequency-domain solver over one :class:`Circuit`."""

    def __init__(self, circuit: Circuit, ac_source: Optional[str] = None):
        """``ac_source`` names the voltage source carrying the 1 V AC
        stimulus; by default the first voltage source is used."""
        self.circuit = circuit
        self._mna = MnaSolver(circuit)
        self._size = self._mna._size
        self._operating_point = None
        sources = [
            e for e in circuit.elements if isinstance(e, VoltageSource)
        ]
        if not sources:
            raise SimulationError("AC analysis needs a voltage source")
        if ac_source is None:
            self.ac_source = sources[0].name
        else:
            if not any(s.name == ac_source for s in sources):
                raise SimulationError(
                    f"no voltage source named {ac_source!r}"
                )
            self.ac_source = ac_source

    # -- operating point -----------------------------------------------------

    def _bias(self) -> np.ndarray:
        if self._operating_point is None:
            op = self._mna._newton(
                np.zeros(self._size), 0.0, None, None, None
            )
            self._operating_point = op
        return self._operating_point

    def _voltage_at(self, x: np.ndarray, node: str) -> float:
        index = self._mna._index(node)
        return 0.0 if index < 0 else float(x[index])

    # -- stamping -------------------------------------------------------------

    def _assemble(self, omega: float, bias: np.ndarray) -> tuple:
        size = self._size
        A = np.zeros((size, size), dtype=complex)
        b = np.zeros(size, dtype=complex)
        for i in range(self._mna._n):
            A[i, i] += self._mna.gmin

        idx = self._mna._index

        def stamp(i, j, value):
            if i >= 0 and j >= 0:
                A[i, j] += value

        for element in self.circuit.elements:
            if isinstance(element, Resistor):
                g = 1.0 / element.resistance
                i, j = idx(element.n1), idx(element.n2)
                stamp(i, i, g)
                stamp(j, j, g)
                stamp(i, j, -g)
                stamp(j, i, -g)
            elif isinstance(element, Switch):
                vc = self._voltage_at(bias, element.control)
                on = vc > element.threshold
                if element.invert:
                    on = not on
                g = 1.0 / (element.ron if on else element.roff)
                i, j = idx(element.n1), idx(element.n2)
                stamp(i, i, g)
                stamp(j, j, g)
                stamp(i, j, -g)
                stamp(j, i, -g)
            elif isinstance(element, Capacitor):
                y = 1j * omega * element.capacitance
                i, j = idx(element.n1), idx(element.n2)
                stamp(i, i, y)
                stamp(j, j, y)
                stamp(i, j, -y)
                stamp(j, i, -y)
            elif isinstance(element, CurrentSource):
                continue  # independent sources are quiet in AC
            elif isinstance(element, VoltageSource):
                i, j = idx(element.npos), idx(element.nneg)
                k = element.branch_index
                stamp(i, k, 1.0)
                stamp(j, k, -1.0)
                stamp(k, i, 1.0)
                stamp(k, j, -1.0)
                if element.name == self.ac_source:
                    b[k] += 1.0  # 1 V AC stimulus
            elif isinstance(element, Vcvs):
                i, j = idx(element.npos), idx(element.nneg)
                ci, cj = idx(element.cpos), idx(element.cneg)
                k = element.branch_index
                stamp(i, k, 1.0)
                stamp(j, k, -1.0)
                stamp(k, i, 1.0)
                stamp(k, j, -1.0)
                stamp(k, ci, -element.gain)
                stamp(k, cj, element.gain)
            elif isinstance(element, Vccs):
                i, j = idx(element.npos), idx(element.nneg)
                ci, cj = idx(element.cpos), idx(element.cneg)
                stamp(i, ci, element.gm)
                stamp(i, cj, -element.gm)
                stamp(j, ci, -element.gm)
                stamp(j, cj, element.gm)
            elif isinstance(element, SaturatingVcvs):
                i, j = idx(element.npos), idx(element.nneg)
                ci, cj = idx(element.cpos), idx(element.cneg)
                k = element.branch_index
                vc = self._voltage_at(bias, element.cpos) - self._voltage_at(
                    bias, element.cneg
                )
                slope = element.derivative(vc)
                stamp(i, k, 1.0)
                stamp(j, k, -1.0)
                stamp(k, i, 1.0)
                stamp(k, j, -1.0)
                stamp(k, ci, -slope)
                stamp(k, cj, slope)
            elif isinstance(element, FunctionSource):
                out = idx(element.nout)
                k = element.branch_index
                values = [
                    self._voltage_at(bias, n) for n in element.inputs
                ]
                grads = element.partials(values)
                stamp(out, k, 1.0)
                stamp(k, out, 1.0)
                for node, grad in zip(element.inputs, grads):
                    stamp(k, idx(node), -grad)
            else:  # pragma: no cover - defensive
                raise SimulationError(
                    f"AC analysis cannot stamp {type(element).__name__}"
                )
        return A, b

    # -- sweep ------------------------------------------------------------------

    def sweep(
        self,
        f_start: float,
        f_stop: float,
        points_per_decade: int = 20,
        probes: Optional[Sequence[str]] = None,
    ) -> AcResult:
        """Logarithmic frequency sweep (SPICE ``.AC DEC``)."""
        if f_start <= 0 or f_stop <= f_start:
            raise SimulationError("need 0 < f_start < f_stop")
        names = probes if probes is not None else self.circuit.node_names
        for name in names:
            if name not in self.circuit._nodes:
                raise SimulationError(f"unknown probe node {name!r}")
        decades = math.log10(f_stop / f_start)
        n_points = max(2, int(round(decades * points_per_decade)) + 1)
        frequencies = np.logspace(
            math.log10(f_start), math.log10(f_stop), n_points
        )
        bias = self._bias()
        records: Dict[str, List[complex]] = {name: [] for name in names}
        with trace_phase("spice.ac_sweep", points=n_points):
            registry = metrics()
            registry.inc("spice.ac.sweeps")
            registry.inc("spice.ac.points", n_points)
            condition_checked = False
            for f in frequencies:
                A, b = self._assemble(2.0 * math.pi * f, bias)
                if fault_active("spice.ac.singular"):
                    # Fault injection: disconnect the first unknown so
                    # the factorization fails through the real path.
                    A = A.copy()
                    A[0, :] = 0.0
                    A[:, 0] = 0.0
                try:
                    registry.inc("spice.mna.factorizations")
                    x = np.linalg.solve(A, b)
                except np.linalg.LinAlgError as err:
                    suspects = singular_suspects(
                        A, self._mna.unknown_labels
                    )
                    message = f"singular AC matrix at {f} Hz: {err}"
                    if suspects:
                        message += (
                            "; suspect unknowns: "
                            f"{', '.join(suspects)} (floating node, or "
                            "conflicting ideal sources?)"
                        )
                    raise SimulationError(message)
                if not condition_checked:
                    # Once per sweep, at the lowest frequency.
                    condition_checked = True
                    cond = condition_estimate(A)
                    if cond > ILL_CONDITION_THRESHOLD:
                        warnings.warn(
                            f"AC system of {self.circuit.title!r} is "
                            f"ill-conditioned (cond ~ {cond:.2e} > "
                            f"{ILL_CONDITION_THRESHOLD:.0e}); the "
                            "response may be numerically meaningless",
                            NumericalWarning,
                            stacklevel=2,
                        )
                bad = check_finite(x, self._mna.unknown_labels)
                if bad is not None:
                    raise SimulationError(
                        f"non-finite AC solution at {f} Hz: "
                        f"{', '.join(bad)} went NaN/Inf"
                    )
                for name in names:
                    records[name].append(complex(x[self._mna._index(name)]))
        return AcResult(
            frequencies=frequencies,
            voltages={k: np.asarray(v) for k, v in records.items()},
        )


def ac_sweep(
    circuit: Circuit,
    f_start: float,
    f_stop: float,
    points_per_decade: int = 20,
    probes: Optional[Sequence[str]] = None,
    ac_source: Optional[str] = None,
) -> AcResult:
    """One-call AC analysis."""
    return AcSolver(circuit, ac_source=ac_source).sweep(
        f_start, f_stop, points_per_decade=points_per_decade, probes=probes
    )
