"""Small-signal AC analysis for the MNA substrate.

Complements the transient engine with frequency-domain analysis: the
circuit is linearized about its DC operating point and solved with
complex phasors over a frequency sweep — SPICE's ``.AC`` analysis.
Used to verify filter responses and op-amp macromodel bandwidth.

Nonlinear elements are linearized at the operating point:

* :class:`~repro.spice.mna.SaturatingVcvs` becomes a VCVS with the
  tanh's local slope;
* :class:`~repro.spice.mna.FunctionSource` becomes a linear combination
  of its inputs with the numeric partial derivatives;
* switches take their operating-point state (on/off resistance).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.diagnostics import SimulationError
from repro.instrument import metrics, trace_phase
from repro.robust.guards import check_finite
from repro.spice.linalg import (
    AnalysisGuard,
    BatchedSolver,
    DenseSolver,
    LinearSolver,
    guarded_solve,
    resolve_backend,
)
from repro.spice.mna import (
    Capacitor,
    Circuit,
    CurrentSource,
    FunctionSource,
    MnaSolver,
    Resistor,
    SaturatingVcvs,
    Switch,
    Vccs,
    Vcvs,
    VoltageSource,
)


@dataclass
class AcResult:
    """Complex node voltages over the swept frequencies."""

    frequencies: np.ndarray
    voltages: Dict[str, np.ndarray]

    def magnitude(self, node: str) -> np.ndarray:
        return np.abs(self.voltages[node])

    def magnitude_db(self, node: str) -> np.ndarray:
        return 20.0 * np.log10(np.maximum(self.magnitude(node), 1e-30))

    def phase_deg(self, node: str) -> np.ndarray:
        return np.degrees(np.angle(self.voltages[node]))

    def cutoff_frequency(self, node: str, drop_db: float = 3.0) -> float:
        """Frequency where the response falls ``drop_db`` below its
        low-frequency value (log-interpolated between sweep points)."""
        mags = self.magnitude_db(node)
        reference = mags[0]
        target = reference - drop_db
        below = np.nonzero(mags <= target)[0]
        if len(below) == 0:
            return float("inf")
        index = int(below[0])
        if index == 0:
            return float(self.frequencies[0])
        f0, f1 = self.frequencies[index - 1], self.frequencies[index]
        m0, m1 = mags[index - 1], mags[index]
        if m1 == m0:
            return float(f1)
        fraction = (target - m0) / (m1 - m0)
        return float(10 ** (
            math.log10(f0) + fraction * (math.log10(f1) - math.log10(f0))
        ))

    def peak_frequency(self, node: str) -> float:
        """Frequency of the magnitude peak (resonance detection)."""
        mags = self.magnitude(node)
        return float(self.frequencies[int(np.argmax(mags))])


class AcSolver:
    """Linearized frequency-domain solver over one :class:`Circuit`."""

    def __init__(
        self,
        circuit: Circuit,
        ac_source: Optional[str] = None,
        linalg: Optional[str] = None,
    ):
        """``ac_source`` names the voltage source carrying the 1 V AC
        stimulus; by default the first voltage source is used.
        ``linalg`` picks the solver backend (``auto``/``dense``/
        ``batched``/``sparse``); ``None`` defers to the process
        default."""
        self.circuit = circuit
        self._linalg = linalg
        self._mna = MnaSolver(circuit, linalg=linalg)
        self._size = self._mna._size
        self._operating_point = None
        sources = [
            e for e in circuit.elements if isinstance(e, VoltageSource)
        ]
        if not sources:
            raise SimulationError("AC analysis needs a voltage source")
        if ac_source is None:
            self.ac_source = sources[0].name
        else:
            if not any(s.name == ac_source for s in sources):
                raise SimulationError(
                    f"no voltage source named {ac_source!r}"
                )
            self.ac_source = ac_source

    # -- operating point -----------------------------------------------------

    def _bias(self) -> np.ndarray:
        if self._operating_point is None:
            op = self._mna._newton(
                np.zeros(self._size), 0.0, None, None, None
            )
            self._operating_point = op
        return self._operating_point

    def _voltage_at(self, x: np.ndarray, node: str) -> float:
        index = self._mna._index(node)
        return 0.0 if index < 0 else float(x[index])

    # -- stamping -------------------------------------------------------------

    def _assemble_parts(
        self, bias: np.ndarray
    ) -> tuple:
        """The ω-independent parts of the AC system.

        Every stamp except the capacitor's is frequency-independent, so
        the system factors as ``A(ω) = G + jω·C`` with one shared
        right-hand side ``b`` — assembled once per sweep, for every
        backend, instead of once per frequency point.
        """
        size = self._size
        G = np.zeros((size, size))
        C = np.zeros((size, size))
        b = np.zeros(size, dtype=complex)
        for i in range(self._mna._n):
            G[i, i] += self._mna.gmin

        idx = self._mna._index

        def stamp(matrix, i, j, value):
            if i >= 0 and j >= 0:
                matrix[i, j] += value

        for element in self.circuit.elements:
            if isinstance(element, Resistor):
                g = 1.0 / element.resistance
                i, j = idx(element.n1), idx(element.n2)
                stamp(G, i, i, g)
                stamp(G, j, j, g)
                stamp(G, i, j, -g)
                stamp(G, j, i, -g)
            elif isinstance(element, Switch):
                vc = self._voltage_at(bias, element.control)
                on = vc > element.threshold
                if element.invert:
                    on = not on
                g = 1.0 / (element.ron if on else element.roff)
                i, j = idx(element.n1), idx(element.n2)
                stamp(G, i, i, g)
                stamp(G, j, j, g)
                stamp(G, i, j, -g)
                stamp(G, j, i, -g)
            elif isinstance(element, Capacitor):
                c = element.capacitance
                i, j = idx(element.n1), idx(element.n2)
                stamp(C, i, i, c)
                stamp(C, j, j, c)
                stamp(C, i, j, -c)
                stamp(C, j, i, -c)
            elif isinstance(element, CurrentSource):
                continue  # independent sources are quiet in AC
            elif isinstance(element, VoltageSource):
                i, j = idx(element.npos), idx(element.nneg)
                k = element.branch_index
                stamp(G, i, k, 1.0)
                stamp(G, j, k, -1.0)
                stamp(G, k, i, 1.0)
                stamp(G, k, j, -1.0)
                if element.name == self.ac_source:
                    b[k] += 1.0  # 1 V AC stimulus
            elif isinstance(element, Vcvs):
                i, j = idx(element.npos), idx(element.nneg)
                ci, cj = idx(element.cpos), idx(element.cneg)
                k = element.branch_index
                stamp(G, i, k, 1.0)
                stamp(G, j, k, -1.0)
                stamp(G, k, i, 1.0)
                stamp(G, k, j, -1.0)
                stamp(G, k, ci, -element.gain)
                stamp(G, k, cj, element.gain)
            elif isinstance(element, Vccs):
                i, j = idx(element.npos), idx(element.nneg)
                ci, cj = idx(element.cpos), idx(element.cneg)
                stamp(G, i, ci, element.gm)
                stamp(G, i, cj, -element.gm)
                stamp(G, j, ci, -element.gm)
                stamp(G, j, cj, element.gm)
            elif isinstance(element, SaturatingVcvs):
                i, j = idx(element.npos), idx(element.nneg)
                ci, cj = idx(element.cpos), idx(element.cneg)
                k = element.branch_index
                vc = self._voltage_at(bias, element.cpos) - self._voltage_at(
                    bias, element.cneg
                )
                slope = element.derivative(vc)
                stamp(G, i, k, 1.0)
                stamp(G, j, k, -1.0)
                stamp(G, k, i, 1.0)
                stamp(G, k, j, -1.0)
                stamp(G, k, ci, -slope)
                stamp(G, k, cj, slope)
            elif isinstance(element, FunctionSource):
                out = idx(element.nout)
                k = element.branch_index
                values = [
                    self._voltage_at(bias, n) for n in element.inputs
                ]
                grads = element.partials(values)
                stamp(G, out, k, 1.0)
                stamp(G, k, out, 1.0)
                for node, grad in zip(element.inputs, grads):
                    stamp(G, k, idx(node), -grad)
            else:  # pragma: no cover - defensive
                raise SimulationError(
                    f"AC analysis cannot stamp {type(element).__name__}"
                )
        return G, C, b

    def _assemble(self, omega: float, bias: np.ndarray) -> tuple:
        """One frequency point's complex system (compatibility path)."""
        G, C, b = self._assemble_parts(bias)
        return G + (1j * omega) * C, b.copy()

    # -- sweep ------------------------------------------------------------------

    def _solve_grid(
        self,
        backend: LinearSolver,
        guard: AnalysisGuard,
        frequencies: np.ndarray,
        G: np.ndarray,
        C: np.ndarray,
        b: np.ndarray,
    ) -> np.ndarray:
        """All frequency points' solutions, ``(n_points, n)``.

        The batched backend factorizes the whole ``(m, n, n)`` stack in
        one call; when that stack contains a singular point the gufunc
        cannot name the offending frequency, so the sweep falls back to
        the dense per-point loop — which reproduces the located error
        (and per-point counters) exactly.
        """
        registry = metrics()
        omegas = 2.0 * math.pi * frequencies
        if isinstance(backend, BatchedSolver):
            A_stack = (
                G[np.newaxis, :, :]
                + (1j * omegas)[:, np.newaxis, np.newaxis]
                * C[np.newaxis, :, :]
            )
            A_stack = guard.inject_fault(A_stack)
            try:
                solutions = backend.solve_grid(A_stack, b)
            except np.linalg.LinAlgError:
                registry.inc("spice.linalg.batched_fallbacks")
                backend = DenseSolver()
            else:
                registry.inc("spice.mna.factorizations", len(frequencies))
                guard.check_condition(A_stack[0])
                return solutions
        solutions = np.empty((len(frequencies), self._size), dtype=complex)
        for i, f in enumerate(frequencies):
            A = G + (1j * omegas[i]) * C
            solutions[i] = guarded_solve(
                backend, A, b, guard, where=f" at {f} Hz"
            )
        return solutions

    def sweep(
        self,
        f_start: float,
        f_stop: float,
        points_per_decade: int = 20,
        probes: Optional[Sequence[str]] = None,
    ) -> AcResult:
        """Logarithmic frequency sweep (SPICE ``.AC DEC``)."""
        if f_start <= 0 or f_stop <= f_start:
            raise SimulationError("need 0 < f_start < f_stop")
        names = probes if probes is not None else self.circuit.node_names
        for name in names:
            if name not in self.circuit._nodes:
                raise SimulationError(f"unknown probe node {name!r}")
        decades = math.log10(f_stop / f_start)
        n_points = max(2, int(round(decades * points_per_decade)) + 1)
        frequencies = np.logspace(
            math.log10(f_start), math.log10(f_stop), n_points
        )
        bias = self._bias()
        G, C, b = self._assemble_parts(bias)
        backend = resolve_backend(
            self._linalg, size=self._size, grid=n_points
        )
        with trace_phase("spice.ac_sweep", points=n_points):
            registry = metrics()
            registry.inc("spice.ac.sweeps")
            registry.inc("spice.ac.points", n_points)
            registry.inc(f"spice.linalg.backend.{backend.name}")
            guard = AnalysisGuard(
                system="AC",
                title=self.circuit.title,
                labels=self._mna.unknown_labels,
                fault_site="spice.ac.singular",
                condition_text="the response may be numerically meaningless",
            )
            solutions = self._solve_grid(
                backend, guard, frequencies, G, C, b
            )
            for i, f in enumerate(frequencies):
                bad = check_finite(solutions[i], self._mna.unknown_labels)
                if bad is not None:
                    raise SimulationError(
                        f"non-finite AC solution at {f} Hz: "
                        f"{', '.join(bad)} went NaN/Inf"
                    )
        return AcResult(
            frequencies=frequencies,
            voltages={
                name: solutions[:, self._mna._index(name)].copy()
                for name in names
            },
        )


def ac_sweep(
    circuit: Circuit,
    f_start: float,
    f_stop: float,
    points_per_decade: int = 20,
    probes: Optional[Sequence[str]] = None,
    ac_source: Optional[str] = None,
    linalg: Optional[str] = None,
) -> AcResult:
    """One-call AC analysis."""
    return AcSolver(circuit, ac_source=ac_source, linalg=linalg).sweep(
        f_start, f_stop, points_per_decade=points_per_decade, probes=probes
    )
