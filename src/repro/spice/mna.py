"""A small SPICE-class circuit simulator (modified nodal analysis).

Substitute for the Berkeley SPICE runs of the paper's Section 6: the
synthesized net-lists are elaborated into R/C/source/op-amp-macromodel
circuits and simulated in the time domain.

Engine features:

* elements: resistors, capacitors, independent V/I sources (DC, SIN,
  PULSE, PWL and arbitrary Python waveforms), VCVS, VCCS, saturating
  (tanh) VCVS for op-amp macromodels, arbitrary nonlinear function
  sources (for multiplier/log/antilog cores), and control-driven
  switches;
* DC operating point by Newton-Raphson;
* transient analysis by backward-Euler companion models with Newton
  iteration per step (A-stable, no ringing on the switching edges the
  synthesized circuits produce).

Node names are strings; ``"0"`` and ``"gnd"`` are ground.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.diagnostics import SimulationError
from repro.instrument import metrics
from repro.robust.faultinject import fault_active
from repro.robust.guards import check_finite
from repro.spice.linalg import (
    AnalysisGuard,
    LinearSolver,
    guarded_solve,
    resolve_backend,
)

GROUND_NAMES = ("0", "gnd", "ground")

Waveform = Callable[[float], float]


def dc(value: float) -> Waveform:
    """Constant source."""
    return lambda t: value


def sin_wave(
    amplitude: float, freq_hz: float, offset: float = 0.0, phase: float = 0.0
) -> Waveform:
    """SPICE SIN() source."""
    omega = 2.0 * math.pi * freq_hz
    return lambda t: offset + amplitude * math.sin(omega * t + phase)


def pulse_wave(
    v1: float,
    v2: float,
    delay: float,
    rise: float,
    fall: float,
    width: float,
    period: float,
) -> Waveform:
    """SPICE PULSE() source."""

    def value(t: float) -> float:
        if t < delay:
            return v1
        phase = (t - delay) % period
        if phase < rise:
            return v1 + (v2 - v1) * phase / max(rise, 1e-15)
        if phase < rise + width:
            return v2
        if phase < rise + width + fall:
            return v2 + (v1 - v2) * (phase - rise - width) / max(fall, 1e-15)
        return v1

    return value


def pwl_wave(points: Sequence[Tuple[float, float]]) -> Waveform:
    """SPICE PWL() source."""
    pts = sorted(points)

    def value(t: float) -> float:
        if t <= pts[0][0]:
            return pts[0][1]
        for (t0, v0), (t1, v1) in zip(pts, pts[1:]):
            if t <= t1:
                if t1 == t0:
                    return v1
                return v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        return pts[-1][1]

    return value


# ---------------------------------------------------------------------------
# Elements
# ---------------------------------------------------------------------------


@dataclass
class _Element:
    name: str


@dataclass
class Resistor(_Element):
    n1: str
    n2: str
    resistance: float


@dataclass
class Capacitor(_Element):
    n1: str
    n2: str
    capacitance: float
    ic: float = 0.0


@dataclass
class VoltageSource(_Element):
    npos: str
    nneg: str
    waveform: Waveform
    branch_index: int = -1


@dataclass
class CurrentSource(_Element):
    npos: str
    nneg: str
    waveform: Waveform


@dataclass
class Vcvs(_Element):
    """E element: v(npos,nneg) = gain * v(cpos,cneg)."""

    npos: str
    nneg: str
    cpos: str
    cneg: str
    gain: float
    branch_index: int = -1


@dataclass
class Vccs(_Element):
    """G element: i(npos->nneg) = gm * v(cpos,cneg)."""

    npos: str
    nneg: str
    cpos: str
    cneg: str
    gm: float


@dataclass
class SaturatingVcvs(_Element):
    """Op-amp gain stage: v_out = vmax * tanh(gain * v_c / vmax).

    Smoothly limits at ±vmax; the tanh derivative keeps Newton stable.
    """

    npos: str
    nneg: str
    cpos: str
    cneg: str
    gain: float
    vmax: float
    branch_index: int = -1

    def value(self, vc: float) -> float:
        return self.vmax * math.tanh(self.gain * vc / self.vmax)

    def derivative(self, vc: float) -> float:
        x = self.gain * vc / self.vmax
        if abs(x) > 40.0:
            return 1e-9
        sech2 = 1.0 / math.cosh(x) ** 2
        return max(self.gain * sech2, 1e-9)


@dataclass
class FunctionSource(_Element):
    """Grounded voltage source computing v_out = fn(v(inputs...)).

    Used for translinear cores (multiplier, divider, log, antilog) and
    comparator decision functions.  Jacobian entries come from numeric
    differentiation; functions should be smooth (use tanh, not step).
    """

    nout: str
    inputs: List[str]
    fn: Callable[..., float]
    branch_index: int = -1

    def value(self, values: Sequence[float]) -> float:
        return float(self.fn(*values))

    def partials(self, values: Sequence[float]) -> List[float]:
        base = self.value(values)
        grads: List[float] = []
        for i in range(len(values)):
            step = 1e-6 * max(abs(values[i]), 1.0)
            bumped = list(values)
            bumped[i] += step
            grads.append((self.value(bumped) - base) / step)
        return grads


@dataclass
class Switch(_Element):
    """Voltage-controlled switch: R = ron when v(c) > threshold else roff.

    The control voltage is sampled from the *previous* Newton solution /
    time step, which keeps the conductance matrix constant within a step
    (no discontinuity inside the Newton loop).
    """

    n1: str
    n2: str
    control: str
    threshold: float = 0.5
    ron: float = 100.0
    roff: float = 1.0e9
    invert: bool = False


# ---------------------------------------------------------------------------
# Circuit
# ---------------------------------------------------------------------------


class Circuit:
    """An MNA circuit under construction."""

    def __init__(self, title: str = "circuit"):
        self.title = title
        self._elements: List[_Element] = []
        self._nodes: Dict[str, int] = {}
        self._names: set = set()

    # -- construction -------------------------------------------------------

    def _node(self, name: str) -> int:
        if name.lower() in GROUND_NAMES:
            return -1
        index = self._nodes.get(name)
        if index is None:
            index = len(self._nodes)
            self._nodes[name] = index
        return index

    def _register(self, element: _Element) -> None:
        if element.name in self._names:
            raise SimulationError(f"duplicate element name {element.name!r}")
        self._names.add(element.name)
        self._elements.append(element)

    def resistor(self, name: str, n1: str, n2: str, resistance: float) -> None:
        if resistance <= 0:
            raise SimulationError(f"resistor {name!r} must be positive")
        self._node(n1), self._node(n2)
        self._register(Resistor(name, n1, n2, resistance))

    def capacitor(
        self, name: str, n1: str, n2: str, capacitance: float, ic: float = 0.0
    ) -> None:
        if capacitance <= 0:
            raise SimulationError(f"capacitor {name!r} must be positive")
        self._node(n1), self._node(n2)
        self._register(Capacitor(name, n1, n2, capacitance, ic))

    def vsource(self, name: str, npos: str, nneg: str, waveform) -> None:
        if not callable(waveform):
            waveform = dc(float(waveform))
        self._node(npos), self._node(nneg)
        self._register(VoltageSource(name, npos, nneg, waveform))

    def isource(self, name: str, npos: str, nneg: str, waveform) -> None:
        if not callable(waveform):
            waveform = dc(float(waveform))
        self._node(npos), self._node(nneg)
        self._register(CurrentSource(name, npos, nneg, waveform))

    def vcvs(
        self, name: str, npos: str, nneg: str, cpos: str, cneg: str, gain: float
    ) -> None:
        for n in (npos, nneg, cpos, cneg):
            self._node(n)
        self._register(Vcvs(name, npos, nneg, cpos, cneg, gain))

    def vccs(
        self, name: str, npos: str, nneg: str, cpos: str, cneg: str, gm: float
    ) -> None:
        for n in (npos, nneg, cpos, cneg):
            self._node(n)
        self._register(Vccs(name, npos, nneg, cpos, cneg, gm))

    def saturating_vcvs(
        self,
        name: str,
        npos: str,
        nneg: str,
        cpos: str,
        cneg: str,
        gain: float,
        vmax: float,
    ) -> None:
        for n in (npos, nneg, cpos, cneg):
            self._node(n)
        self._register(SaturatingVcvs(name, npos, nneg, cpos, cneg, gain, vmax))

    def function_source(
        self, name: str, nout: str, inputs: Sequence[str], fn
    ) -> None:
        self._node(nout)
        for n in inputs:
            self._node(n)
        self._register(FunctionSource(name, nout, list(inputs), fn))

    def switch(
        self,
        name: str,
        n1: str,
        n2: str,
        control: str,
        threshold: float = 0.5,
        ron: float = 100.0,
        roff: float = 1.0e9,
        invert: bool = False,
    ) -> None:
        self._node(n1), self._node(n2), self._node(control)
        self._register(Switch(name, n1, n2, control, threshold, ron, roff, invert))

    # -- queries --------------------------------------------------------------

    @property
    def node_names(self) -> List[str]:
        return sorted(self._nodes, key=self._nodes.get)  # type: ignore[arg-type]

    @property
    def elements(self) -> List[_Element]:
        return list(self._elements)

    def n_nodes(self) -> int:
        return len(self._nodes)


# ---------------------------------------------------------------------------
# Analyses
# ---------------------------------------------------------------------------


@dataclass
class TransientResult:
    """Node voltages over time."""

    time: np.ndarray
    voltages: Dict[str, np.ndarray]

    def __getitem__(self, node: str) -> np.ndarray:
        return self.voltages[node]

    def final(self, node: str) -> float:
        return float(self.voltages[node][-1])


class MnaSolver:
    """Assembles and solves the MNA system of a :class:`Circuit`."""

    def __init__(
        self,
        circuit: Circuit,
        gmin: float = 1e-12,
        linalg: Optional[str] = None,
    ):
        self.circuit = circuit
        self.gmin = gmin
        self._linalg = linalg
        self._n = circuit.n_nodes()
        # Assign branch currents to every voltage-defining element.
        self._branches = 0
        branch_labels: List[str] = []
        for element in circuit.elements:
            if isinstance(
                element, (VoltageSource, Vcvs, SaturatingVcvs, FunctionSource)
            ):
                element.branch_index = self._n + self._branches
                self._branches += 1
                branch_labels.append(f"i({element.name})")
        self._size = self._n + self._branches
        #: human-readable label of every MNA unknown, in matrix order:
        #: node voltages first, then branch currents — used to name
        #: suspects in singular-matrix and non-finite errors.
        self.unknown_labels: List[str] = [
            f"v({name})" for name in circuit.node_names
        ] + branch_labels
        #: the numerical-guard boundary every factorization goes
        #: through: fault injection, singular-suspect naming, the
        #: once-per-analysis condition estimate
        self._guard = AnalysisGuard(
            system="MNA",
            title=circuit.title,
            labels=self.unknown_labels,
            fault_site="spice.singular",
            condition_text="voltages may be numerically meaningless",
        )
        self._backend: Optional[LinearSolver] = None

    # -- helpers -----------------------------------------------------------------

    def _index(self, node: str) -> int:
        if node.lower() in GROUND_NAMES:
            return -1
        return self.circuit._nodes[node]

    @staticmethod
    def _stamp(matrix: np.ndarray, i: int, j: int, value: float) -> None:
        if i >= 0 and j >= 0:
            matrix[i, j] += value

    @staticmethod
    def _stamp_rhs(rhs: np.ndarray, i: int, value: float) -> None:
        if i >= 0:
            rhs[i] += value

    def _voltage(self, x: np.ndarray, node: str) -> float:
        index = self._index(node)
        return 0.0 if index < 0 else float(x[index])

    def _solver_backend(self) -> LinearSolver:
        """The linear-solver backend of this analysis (resolved lazily
        so a changed process default applies to freshly built solvers)."""
        if self._backend is None:
            self._backend = resolve_backend(self._linalg, size=self._size)
            metrics().inc(f"spice.linalg.backend.{self._backend.name}")
        return self._backend

    def _check_solution_finite(
        self, x: np.ndarray, t: Optional[float] = None
    ) -> None:
        """Raise a located error when the solution went NaN/Inf."""
        if fault_active("spice.nonfinite") and x.size:
            # Fault injection: corrupt the first unknown so detection
            # runs through the real guard path.
            x = x.copy()
            x[0] = math.nan
        bad = check_finite(x, self.unknown_labels)
        if bad is None:
            return
        where = f" at t={t:g} s" if t is not None else " at DC"
        raise SimulationError(
            f"non-finite solution{where}: {', '.join(bad)} went NaN/Inf "
            "(check element values and source waveforms)"
        )

    # -- system assembly ------------------------------------------------------------

    def _assemble(
        self,
        x: np.ndarray,
        t: float,
        dt: Optional[float],
        prev: Optional[np.ndarray],
        switch_controls: Optional[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        size = self._size
        A = np.zeros((size, size))
        b = np.zeros(size)
        for i in range(self._n):
            A[i, i] += self.gmin

        control_state = switch_controls if switch_controls is not None else x

        for element in self.circuit.elements:
            if isinstance(element, Resistor):
                g = 1.0 / element.resistance
                i, j = self._index(element.n1), self._index(element.n2)
                self._stamp(A, i, i, g)
                self._stamp(A, j, j, g)
                self._stamp(A, i, j, -g)
                self._stamp(A, j, i, -g)
            elif isinstance(element, Switch):
                vc = (
                    self._voltage(control_state, element.control)
                    if control_state is not None
                    else 0.0
                )
                on = vc > element.threshold
                if element.invert:
                    on = not on
                g = 1.0 / (element.ron if on else element.roff)
                i, j = self._index(element.n1), self._index(element.n2)
                self._stamp(A, i, i, g)
                self._stamp(A, j, j, g)
                self._stamp(A, i, j, -g)
                self._stamp(A, j, i, -g)
            elif isinstance(element, Capacitor):
                i, j = self._index(element.n1), self._index(element.n2)
                if dt is None:
                    continue  # open circuit at DC
                g = element.capacitance / dt
                v_prev = 0.0
                if prev is not None:
                    v_prev = (0.0 if i < 0 else prev[i]) - (
                        0.0 if j < 0 else prev[j]
                    )
                else:
                    v_prev = element.ic
                self._stamp(A, i, i, g)
                self._stamp(A, j, j, g)
                self._stamp(A, i, j, -g)
                self._stamp(A, j, i, -g)
                self._stamp_rhs(b, i, g * v_prev)
                self._stamp_rhs(b, j, -g * v_prev)
            elif isinstance(element, CurrentSource):
                value = element.waveform(t)
                i, j = self._index(element.npos), self._index(element.nneg)
                self._stamp_rhs(b, i, -value)
                self._stamp_rhs(b, j, value)
            elif isinstance(element, VoltageSource):
                i, j = self._index(element.npos), self._index(element.nneg)
                k = element.branch_index
                self._stamp(A, i, k, 1.0)
                self._stamp(A, j, k, -1.0)
                self._stamp(A, k, i, 1.0)
                self._stamp(A, k, j, -1.0)
                b[k] += element.waveform(t)
            elif isinstance(element, Vcvs):
                i, j = self._index(element.npos), self._index(element.nneg)
                ci, cj = self._index(element.cpos), self._index(element.cneg)
                k = element.branch_index
                self._stamp(A, i, k, 1.0)
                self._stamp(A, j, k, -1.0)
                self._stamp(A, k, i, 1.0)
                self._stamp(A, k, j, -1.0)
                self._stamp(A, k, ci, -element.gain)
                self._stamp(A, k, cj, element.gain)
            elif isinstance(element, Vccs):
                i, j = self._index(element.npos), self._index(element.nneg)
                ci, cj = self._index(element.cpos), self._index(element.cneg)
                self._stamp(A, i, ci, element.gm)
                self._stamp(A, i, cj, -element.gm)
                self._stamp(A, j, ci, -element.gm)
                self._stamp(A, j, cj, element.gm)
            elif isinstance(element, SaturatingVcvs):
                i, j = self._index(element.npos), self._index(element.nneg)
                ci, cj = self._index(element.cpos), self._index(element.cneg)
                k = element.branch_index
                vc = (0.0 if ci < 0 else x[ci]) - (0.0 if cj < 0 else x[cj])
                f = element.value(vc)
                df = element.derivative(vc)
                # v(out) = f(vc0) + df*(vc - vc0)  (Newton linearization)
                self._stamp(A, i, k, 1.0)
                self._stamp(A, j, k, -1.0)
                self._stamp(A, k, i, 1.0)
                self._stamp(A, k, j, -1.0)
                self._stamp(A, k, ci, -df)
                self._stamp(A, k, cj, df)
                b[k] += f - df * vc
            elif isinstance(element, FunctionSource):
                out = self._index(element.nout)
                k = element.branch_index
                values = [self._voltage(x, n) for n in element.inputs]
                f = element.value(values)
                grads = element.partials(values)
                self._stamp(A, out, k, 1.0)
                self._stamp(A, k, out, 1.0)
                rhs = f
                for node, grad in zip(element.inputs, grads):
                    ni = self._index(node)
                    self._stamp(A, k, ni, -grad)
                    rhs -= grad * self._voltage(x, node)
                b[k] += rhs
            else:  # pragma: no cover - defensive
                raise SimulationError(
                    f"unknown element type {type(element).__name__}"
                )
        return A, b

    def _residual_norm(
        self,
        x: np.ndarray,
        t: float,
        dt: Optional[float],
        prev: Optional[np.ndarray],
        switch_controls: Optional[np.ndarray],
    ) -> float:
        A, b = self._assemble(x, t, dt, prev, switch_controls)
        return float(np.max(np.abs(A @ x - b))) if x.size else 0.0

    def _newton(
        self,
        x0: np.ndarray,
        t: float,
        dt: Optional[float],
        prev: Optional[np.ndarray],
        switch_controls: Optional[np.ndarray],
        max_iter: int = 80,
        tol: float = 1e-9,
    ) -> np.ndarray:
        """Damped Newton with a residual-norm line search.

        High-gain saturating stages (tanh with A = 2e4) make plain
        Newton oscillate between the rails; backtracking on the
        residual norm keeps every accepted step a true improvement.
        """
        x = x0.copy()
        if not x.size:
            return x
        residual = self._residual_norm(x, t, dt, prev, switch_controls)
        backend = self._solver_backend()
        for _ in range(max_iter):
            A, b = self._assemble(x, t, dt, prev, switch_controls)
            # The guard boundary owns fault injection, the singular
            # error (with suspect naming), the success/failure
            # factorization counters, and the once-per-analysis
            # condition estimate.
            x_new = guarded_solve(
                backend, A, b, self._guard, where=f" at t={t:g} s"
            )
            step = x_new - x
            delta = float(np.max(np.abs(step)))
            if delta < tol:
                return x_new
            # Backtracking line search on the residual norm.
            alpha = 1.0
            accepted = False
            for _try in range(10):
                candidate = x + alpha * step
                cand_residual = self._residual_norm(
                    candidate, t, dt, prev, switch_controls
                )
                if cand_residual <= residual * (1.0 - 1e-4 * alpha) or (
                    cand_residual < tol
                ):
                    x = candidate
                    residual = cand_residual
                    accepted = True
                    break
                alpha *= 0.5
            if not accepted:
                # Take the smallest step anyway to escape flat spots.
                x = x + alpha * step
                residual = self._residual_norm(
                    x, t, dt, prev, switch_controls
                )
            if residual < tol:
                return x
        return x  # best effort; tests check accuracy explicitly

    # -- public analyses ----------------------------------------------------------------

    def dc_operating_point(self) -> Dict[str, float]:
        """Newton DC solution (capacitors open)."""
        self._guard.reset()
        x = self._newton(np.zeros(self._size), 0.0, None, None, None)
        self._check_solution_finite(x)
        return {
            name: float(x[index])
            for name, index in self.circuit._nodes.items()
        }

    def transient(
        self,
        t_end: float,
        dt: float,
        probes: Optional[Sequence[str]] = None,
        x0: Optional[np.ndarray] = None,
    ) -> TransientResult:
        """Backward-Euler transient from t=0 (or from ``x0``)."""
        if dt <= 0 or t_end <= 0:
            raise SimulationError("dt and t_end must be positive")
        names = probes if probes is not None else self.circuit.node_names
        for name in names:
            if name.lower() not in GROUND_NAMES and name not in self.circuit._nodes:
                raise SimulationError(f"unknown probe node {name!r}")
        self._guard.reset()
        n_steps = int(round(t_end / dt))
        times = np.empty(n_steps)
        records: Dict[str, List[float]] = {name: [] for name in names}
        if x0 is not None:
            x = x0.copy()
        else:
            x = np.zeros(self._size)
            # Seed node voltages from capacitor initial conditions.
            for element in self.circuit.elements:
                if isinstance(element, Capacitor) and element.ic != 0.0:
                    i = self._index(element.n1)
                    j = self._index(element.n2)
                    if i >= 0 and j < 0:
                        x[i] = element.ic
                    elif j >= 0 and i < 0:
                        x[j] = -element.ic
        prev = x.copy()
        for step in range(n_steps):
            t = (step + 1) * dt
            x = self._newton(x, t, dt, prev, switch_controls=prev)
            self._check_solution_finite(x, t=t)
            times[step] = t
            for name in names:
                records[name].append(self._voltage(x, name))
            prev = x.copy()
        return TransientResult(
            time=times,
            voltages={k: np.asarray(v) for k, v in records.items()},
        )


def simulate_transient(
    circuit: Circuit,
    t_end: float,
    dt: float,
    probes: Optional[Sequence[str]] = None,
    linalg: Optional[str] = None,
) -> TransientResult:
    """One-call transient analysis."""
    return MnaSolver(circuit, linalg=linalg).transient(
        t_end, dt, probes=probes
    )
