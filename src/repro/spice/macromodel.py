"""Op-amp and stage macromodels for the MNA simulator.

The paper's Section 6 experiment selects 2-stage op amps in the MOSIS
SCN-2.0um technology, netlists the design in SPICE and simulates it.
We substitute sized-transistor decks with behavioral macromodels that
keep the externally visible figures (DC gain, output saturation, single
dominant pole, output resistance) — exactly what the Figure-8 waveforms
demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.spice.mna import Circuit


@dataclass(frozen=True)
class OpAmpMacro:
    """Behavioral parameters of one op amp."""

    dc_gain: float = 2.0e4
    vsat: float = 4.0  # output saturation, volts
    rout: float = 100.0
    rin: float = 1.0e6
    pole_hz: Optional[float] = None  # dominant pole; None = ideal-speed


def add_opamp(
    circuit: Circuit,
    name: str,
    inp: str,
    inn: str,
    out: str,
    macro: OpAmpMacro = OpAmpMacro(),
) -> None:
    """Instantiate an op-amp macromodel between ``inp``/``inn`` and ``out``.

    Structure: differential input resistance, saturating gain stage into
    an internal node, optional dominant-pole RC, series output
    resistance.
    """
    internal = f"{name}_int"
    circuit.resistor(f"{name}_rin", inp, inn, macro.rin)
    circuit.saturating_vcvs(
        f"{name}_gain", internal, "0", inp, inn, macro.dc_gain, macro.vsat
    )
    if macro.pole_hz is not None:
        import math

        pole_node = f"{name}_pole"
        r_pole = 10.0e3
        c_pole = 1.0 / (2.0 * math.pi * macro.pole_hz * r_pole)
        circuit.resistor(f"{name}_rp", internal, pole_node, r_pole)
        circuit.capacitor(f"{name}_cp", pole_node, "0", c_pole)
        circuit.resistor(f"{name}_rout", pole_node, out, macro.rout)
    else:
        circuit.resistor(f"{name}_rout", internal, out, macro.rout)


def add_limiter_stage(
    circuit: Circuit,
    name: str,
    inp: str,
    out: str,
    level: float,
    rout: float = 1.0,
) -> None:
    """Output stage hard-clipping at ±level (the receiver's block 4).

    A precision limiter follows its input exactly inside the window and
    clamps outside it (diode feedback around the op amp); the macromodel
    uses a clamp function source plus the stage's output resistance.
    """
    level = max(level, 1e-3)
    internal = f"{name}_drv"
    circuit.function_source(
        f"{name}_clip",
        internal,
        [inp],
        lambda v: min(max(v, -level), level),
    )
    circuit.resistor(f"{name}_rout", internal, out, rout)
