"""Pluggable linear-solver backends for the SPICE substrate.

The MNA and AC engines used to call ``np.linalg.solve`` inline, each
wrapping the call in its own copy of the numerical guards (fault
injection, singular-suspect naming, the once-per-analysis condition
estimate, factorization counters).  This module extracts that solve
path behind one :class:`LinearSolver` interface with three
implementations:

``dense``
    the reference: one LAPACK solve per system, exactly the seed
    semantics;
``batched``
    one vectorized complex LU over a whole frequency grid — the
    ``(n_points, n, n)`` tensor goes through a single stacked
    ``np.linalg.solve`` call instead of a Python loop.  On a singular
    point the stacked factorization cannot name the offending
    frequency, so the caller falls back to the dense per-point loop to
    reproduce the located error;
``sparse``
    ``scipy.sparse.linalg.splu``, worthwhile past a node-count
    threshold.  scipy is an *optional* dependency: when it is missing
    the backend resolves to ``dense`` (and a
    ``spice.linalg.sparse_unavailable`` counter records the fallback).

The guards live at this boundary, in :class:`AnalysisGuard`, instead of
being duplicated per call site: fault-injection row-zeroing, the
singular error message (both assembled by ``repro.robust.guards``
helpers), the once-per-analysis condition estimate, and the
factorization counters.  ``spice.mna.factorizations`` counts successful
factorizations only; failures land on
``spice.mna.factorization_failures``.

Backend selection: every analysis accepts an explicit ``linalg=``
preference; ``None`` defers to the process default (``"auto"`` unless
:func:`set_default_backend` / :func:`use_backend` changed it — the
override is thread-local, so concurrent serve jobs with different
preferences do not race).  ``auto`` picks ``sparse`` past
:data:`SPARSE_THRESHOLD` unknowns when scipy is present, ``batched``
for grid solves, and ``dense`` otherwise.  Results are
backend-identical (same matrices, same LAPACK family), which is why
the knob is excluded from every content fingerprint.
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.diagnostics import SimulationError
from repro.instrument import metrics
from repro.robust.faultinject import fault_active
from repro.robust.guards import (
    ILL_CONDITION_THRESHOLD,
    NumericalWarning,
    condition_estimate,
    describe_singular_system,
    zero_first_unknown,
)

#: every accepted backend preference (``auto`` resolves per analysis)
BACKENDS = ("auto", "dense", "batched", "sparse")

#: unknown count beyond which ``auto`` prefers the sparse backend
SPARSE_THRESHOLD = 64

try:  # scipy is optional: the sparse backend degrades to dense without it
    from scipy.sparse import csc_matrix as _csc_matrix
    from scipy.sparse.linalg import splu as _splu

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised on the no-scipy CI leg
    _csc_matrix = None
    _splu = None
    HAVE_SCIPY = False


class LinearSolver:
    """One way of factorizing and solving the assembled MNA systems."""

    name = "abstract"

    def solve(self, A: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Solve one ``A x = b`` system (raises ``LinAlgError``)."""
        raise NotImplementedError

    def solve_grid(self, A_stack: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Solve ``A_stack[i] x_i = b`` for every grid point.

        ``A_stack`` is ``(m, n, n)``, ``b`` is one shared ``(n,)``
        right-hand side; returns ``(m, n)``.  Raises ``LinAlgError``
        when *any* point is singular.
        """
        raise NotImplementedError


class DenseSolver(LinearSolver):
    """The reference backend: one LAPACK solve per system."""

    name = "dense"

    def solve(self, A: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.linalg.solve(A, b)

    def solve_grid(self, A_stack: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = np.empty((A_stack.shape[0], b.shape[-1]), dtype=A_stack.dtype)
        for i in range(A_stack.shape[0]):
            out[i] = np.linalg.solve(A_stack[i], b)
        return out


class BatchedSolver(LinearSolver):
    """Stacked LU over the whole grid in one gufunc call."""

    name = "batched"

    def solve(self, A: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.linalg.solve(A, b)

    def solve_grid(self, A_stack: np.ndarray, b: np.ndarray) -> np.ndarray:
        # The shared RHS is broadcast to a stack of (n, 1) column
        # matrices: unambiguous under both numpy RHS-interpretation
        # rules (a 2-D b would be read as one matrix, not a stack).
        rhs = np.broadcast_to(
            b[:, np.newaxis], (A_stack.shape[0], b.shape[-1], 1)
        )
        return np.linalg.solve(A_stack, rhs)[..., 0]


class SparseSolver(LinearSolver):
    """``scipy.sparse.linalg.splu`` — pays off on large systems."""

    name = "sparse"

    def solve(self, A: np.ndarray, b: np.ndarray) -> np.ndarray:
        try:
            factored = _splu(_csc_matrix(A))
            return factored.solve(np.asarray(b, dtype=A.dtype))
        except (RuntimeError, ValueError) as err:
            # splu reports exact singularity as RuntimeError; normalize
            # onto the one exception type the guard boundary handles.
            raise np.linalg.LinAlgError(str(err)) from err

    def solve_grid(self, A_stack: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = np.empty((A_stack.shape[0], b.shape[-1]), dtype=A_stack.dtype)
        for i in range(A_stack.shape[0]):
            out[i] = self.solve(A_stack[i], b)
        return out


# ---------------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------------

_DEFAULT_LOCK = threading.Lock()
_default_backend = "auto"
_local = threading.local()


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown linalg backend {name!r}; choose from "
            f"{', '.join(BACKENDS)}"
        )
    return name


def default_backend() -> str:
    """The effective backend preference of this thread."""
    override = getattr(_local, "backend", None)
    return override if override is not None else _default_backend


def set_default_backend(name: str) -> str:
    """Set the process-wide preference; returns the previous one."""
    global _default_backend
    _validate(name)
    with _DEFAULT_LOCK:
        previous = _default_backend
        _default_backend = name
    return previous


@contextmanager
def use_backend(name: Optional[str]) -> Iterator[None]:
    """Thread-local backend preference for the duration of a run.

    ``None`` (or ``"auto"`` while the default is unchanged) is a no-op;
    nesting restores the previous override on exit.
    """
    if name is None:
        yield
        return
    _validate(name)
    previous = getattr(_local, "backend", None)
    _local.backend = name
    try:
        yield
    finally:
        _local.backend = previous


def resolve_backend(
    preference: Optional[str] = None, size: int = 0, grid: int = 1
) -> LinearSolver:
    """Pick the backend instance for one analysis.

    ``preference`` of ``None`` defers to :func:`default_backend`;
    ``auto`` selects sparse past :data:`SPARSE_THRESHOLD` unknowns
    (when scipy is importable), batched when the analysis solves a
    grid of systems, dense otherwise.  An explicit ``sparse`` request
    without scipy degrades gracefully to dense.
    """
    name = _validate(preference or default_backend())
    if name == "auto":
        if HAVE_SCIPY and size >= SPARSE_THRESHOLD:
            return SparseSolver()
        if grid > 1:
            return BatchedSolver()
        return DenseSolver()
    if name == "sparse" and not HAVE_SCIPY:
        metrics().inc("spice.linalg.sparse_unavailable")
        return DenseSolver()
    return {
        "dense": DenseSolver,
        "batched": BatchedSolver,
        "sparse": SparseSolver,
    }[name]()


# ---------------------------------------------------------------------------
# The guard boundary
# ---------------------------------------------------------------------------


class AnalysisGuard:
    """Per-analysis numerical-guard state, shared by every backend.

    Owns what the engines used to duplicate around each inline solve:
    the fault-injection site, the singular error (with suspect naming
    and a location clause), and the once-per-analysis condition
    estimate.  One guard instance spans one analysis (a DC solve, a
    transient, an AC sweep); :meth:`reset` rearms the condition check
    for the next analysis on the same solver.
    """

    def __init__(
        self,
        system: str,
        title: str,
        labels: Sequence[str],
        fault_site: str,
        condition_text: str,
    ):
        self.system = system
        self.title = title
        self.labels = labels
        self.fault_site = fault_site
        self.condition_text = condition_text
        self.condition_checked = False

    def reset(self) -> None:
        self.condition_checked = False

    def inject_fault(self, A: np.ndarray) -> np.ndarray:
        """Apply the armed fault (if any); works on grids too."""
        if fault_active(self.fault_site):
            return zero_first_unknown(A)
        return A

    def singular_error(
        self, A: np.ndarray, err: Exception, where: str = ""
    ) -> SimulationError:
        return SimulationError(
            describe_singular_system(
                self.system, A, self.labels, err, where=where
            )
        )

    def check_condition(self, A: np.ndarray) -> None:
        """Once per analysis: flag systems whose factorization succeeds
        but whose solution is numerically meaningless."""
        if self.condition_checked:
            return
        self.condition_checked = True
        cond = condition_estimate(A)
        if cond > ILL_CONDITION_THRESHOLD:
            warnings.warn(
                f"{self.system} system of {self.title!r} is "
                f"ill-conditioned (cond ~ {cond:.2e} > "
                f"{ILL_CONDITION_THRESHOLD:.0e}); {self.condition_text}",
                NumericalWarning,
                stacklevel=4,
            )


def guarded_solve(
    backend: LinearSolver,
    A: np.ndarray,
    b: np.ndarray,
    guard: AnalysisGuard,
    where: str = "",
) -> np.ndarray:
    """One guarded point solve: the engines' shared factorization path.

    Counts ``spice.mna.factorizations`` on success only (a failed
    factorization lands on ``spice.mna.factorization_failures``), then
    runs the guard's once-per-analysis condition estimate.
    """
    A = guard.inject_fault(A)
    registry = metrics()
    try:
        x = backend.solve(A, b)
    except np.linalg.LinAlgError as err:
        registry.inc("spice.mna.factorization_failures")
        raise guard.singular_error(A, err, where=where)
    registry.inc("spice.mna.factorizations")
    guard.check_condition(A)
    return x
