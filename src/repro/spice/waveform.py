"""Waveform measurements on simulation results.

Small measurement toolkit over :class:`numpy.ndarray` traces: peaks,
clipping detection, settling, RMS, fundamental frequency — the figures
one reads off plots like the paper's Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


def peak(values: np.ndarray) -> float:
    """Largest absolute excursion."""
    return float(np.max(np.abs(values)))


def peak_to_peak(values: np.ndarray) -> float:
    return float(np.max(values) - np.min(values))


def rms(values: np.ndarray) -> float:
    return float(np.sqrt(np.mean(np.square(values))))


def final_value(values: np.ndarray, fraction: float = 0.05) -> float:
    """Mean of the last ``fraction`` of the trace (steady-state value)."""
    n = max(1, int(len(values) * fraction))
    return float(np.mean(values[-n:]))


@dataclass
class ClipReport:
    """Result of clipping detection."""

    clipped: bool
    level: float
    dwell_fraction: float  # fraction of samples sitting at the rail


def detect_clipping(
    values: np.ndarray,
    tolerance: float = 0.02,
    min_dwell: float = 0.12,
) -> ClipReport:
    """Detect output clipping (possibly on one rail only).

    A trace clips when a significant fraction of samples dwell within
    ``tolerance`` (relative) of the extreme value on a rail: a sine
    through a limiter flattens there (dwell ~1/3 of a period), while a
    clean sine spends only ~6 % of its period within 2 % of a peak.
    """
    top = float(np.max(values))
    bottom = float(np.min(values))
    level = max(abs(top), abs(bottom))
    if level <= 0:
        return ClipReport(clipped=False, level=0.0, dwell_fraction=0.0)
    band = tolerance * level
    at_top = np.sum(values >= top - band)
    at_bottom = np.sum(values <= bottom + band)
    dwell = float(max(at_top, at_bottom)) / len(values)
    clipped_level = abs(bottom) if at_bottom >= at_top else abs(top)
    return ClipReport(
        clipped=dwell >= min_dwell,
        level=clipped_level if dwell >= min_dwell else level,
        dwell_fraction=dwell,
    )


def settling_time(
    time: np.ndarray,
    values: np.ndarray,
    target: Optional[float] = None,
    tolerance: float = 0.02,
) -> float:
    """Time after which the trace stays within ``tolerance`` of target."""
    if target is None:
        target = final_value(values)
    band = tolerance * max(abs(target), 1e-12)
    outside = np.abs(values - target) > band
    if not np.any(outside):
        return float(time[0])
    last_outside = int(np.max(np.nonzero(outside)))
    if last_outside + 1 >= len(time):
        return float("inf")
    return float(time[last_outside + 1])


def fundamental_frequency(time: np.ndarray, values: np.ndarray) -> float:
    """Dominant nonzero frequency via the FFT of the trace."""
    if len(time) < 4:
        return 0.0
    dt = float(time[1] - time[0])
    spectrum = np.abs(np.fft.rfft(values - np.mean(values)))
    freqs = np.fft.rfftfreq(len(values), dt)
    if len(spectrum) < 2:
        return 0.0
    index = int(np.argmax(spectrum[1:]) + 1)
    return float(freqs[index])


def crossing_count(
    values: np.ndarray, threshold: float = 0.0
) -> int:
    """Number of threshold crossings (both directions)."""
    above = values > threshold
    return int(np.sum(above[1:] != above[:-1]))


def gain_between(
    input_values: np.ndarray, output_values: np.ndarray
) -> float:
    """Amplitude ratio between two (steady-state) sinusoidal traces."""
    denominator = peak(input_values)
    if denominator == 0:
        return 0.0
    return peak(output_values) / denominator
