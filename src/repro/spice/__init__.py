"""SPICE substrate: MNA simulator, macromodels, netlister, waveforms."""

from repro.spice.ac import AcResult, AcSolver, ac_sweep
from repro.spice.linalg import (
    BACKENDS,
    HAVE_SCIPY,
    AnalysisGuard,
    BatchedSolver,
    DenseSolver,
    LinearSolver,
    SparseSolver,
    default_backend,
    guarded_solve,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.spice.macromodel import OpAmpMacro, add_limiter_stage, add_opamp
from repro.spice.mna import (
    Circuit,
    MnaSolver,
    TransientResult,
    dc,
    pulse_wave,
    pwl_wave,
    simulate_transient,
    sin_wave,
)
from repro.spice.netlister import (
    ElaboratedCircuit,
    elaborate,
    infer_control_links,
    to_spice_deck,
)
from repro.spice import waveform

__all__ = [
    "AcResult",
    "AcSolver",
    "AnalysisGuard",
    "BACKENDS",
    "BatchedSolver",
    "Circuit",
    "DenseSolver",
    "HAVE_SCIPY",
    "LinearSolver",
    "SparseSolver",
    "ElaboratedCircuit",
    "MnaSolver",
    "OpAmpMacro",
    "TransientResult",
    "ac_sweep",
    "add_limiter_stage",
    "add_opamp",
    "dc",
    "default_backend",
    "elaborate",
    "guarded_solve",
    "infer_control_links",
    "pulse_wave",
    "pwl_wave",
    "resolve_backend",
    "set_default_backend",
    "simulate_transient",
    "sin_wave",
    "to_spice_deck",
    "use_backend",
    "waveform",
]
