"""Netlist back end: SPICE deck text and MNA elaboration.

Two consumers of a synthesized :class:`~repro.synth.netlist.Netlist`:

* :func:`to_spice_deck` — a textual SPICE deck with one subcircuit call
  per component instance (an inspection/interchange artifact, like the
  deck the paper generated for the receiver);
* :func:`elaborate` — an executable :class:`~repro.spice.mna.Circuit`
  built from op-amp macromodels, R/C networks, switches and translinear
  function cores, ready for transient analysis.

Circuit-level choices (documented substitutions):

* summing stages use the *non-inverting summer* topology (weighted
  resistor network into v+, gain-setting feedback), so the elaborated
  transfer matches the signal-flow semantics without global sign
  planning;
* integrators use the Howland/Deboo form (current source charging a
  grounded capacitor, buffered), which is non-inverting;
* multiplier/divider/log/antilog instances use function sources
  standing in for their translinear cores;
* comparators are steep sigmoid sources producing 0/1 control levels;
  Schmitt triggers close positive feedback around the sigmoid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.diagnostics import SynthesisError
from repro.spice import mna
from repro.spice.macromodel import OpAmpMacro, add_limiter_stage, add_opamp
from repro.synth.netlist import ComponentInstance, Netlist

#: base resistor value for gain networks
R_NOM = 20.0e3


def _net_node(net: object) -> str:
    return f"n{net}"


# ---------------------------------------------------------------------------
# SPICE deck text
# ---------------------------------------------------------------------------


def to_spice_deck(
    netlist: Netlist,
    title: Optional[str] = None,
    t_end: float = 2.0e-3,
    dt: float = 1.0e-6,
) -> str:
    """Render the netlist as a SPICE deck (subcircuit-call style)."""
    lines: List[str] = [f"* {title or netlist.name} — synthesized by VASE repro"]
    lines.append("* op amp level net-list of library components")
    for port, net in netlist.inputs.items():
        lines.append(f"VIN_{port} {_net_node(net)} 0 DC 0 AC 1")
    for net, value in netlist.const_nets.items():
        lines.append(f"VREF_{net} {_net_node(net)} 0 DC {value:g}")
    for inst in netlist.instances:
        nodes = [_net_node(n) for n in inst.inputs]
        if inst.output is not None:
            nodes.append(_net_node(inst.output))
        if inst.control is not None:
            nodes.append(
                f"ctrl_{inst.control}"
                if isinstance(inst.control, str)
                else _net_node(inst.control)
            )
        params = " ".join(
            f"{k}={v}" for k, v in sorted(inst.params.items())
            if isinstance(v, (int, float))
        )
        lines.append(
            f"X{inst.name} {' '.join(nodes)} {inst.spec.name.upper()}"
            + (f" {params}" if params else "")
        )
    for port, net in netlist.outputs.items():
        lines.append(f"* output {port} at node {_net_node(net)}")
    lines.append(f".TRAN {dt:g} {t_end:g}")
    lines.append(".END")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# MNA elaboration
# ---------------------------------------------------------------------------


@dataclass
class ElaboratedCircuit:
    """An MNA circuit plus the mapping from netlist nets to node names."""

    circuit: mna.Circuit
    nodes: Dict[object, str] = field(default_factory=dict)
    #: node carrying each output port's voltage
    output_nodes: Dict[str, str] = field(default_factory=dict)
    input_nodes: Dict[str, str] = field(default_factory=dict)

    def transient(
        self, t_end: float, dt: float, probes: Optional[Sequence[str]] = None
    ) -> mna.TransientResult:
        return mna.MnaSolver(self.circuit).transient(t_end, dt, probes=probes)


def _sigmoid(threshold: float, steepness: float = 2000.0):
    def fn(v: float) -> float:
        x = steepness * (v - threshold)
        if x > 40.0:
            return 1.0
        if x < -40.0:
            return 0.0
        return 1.0 / (1.0 + math.exp(-x))

    return fn


class Elaborator:
    """Expands component instances into MNA elements."""

    def __init__(
        self,
        netlist: Netlist,
        input_waves: Optional[Mapping[str, mna.Waveform]] = None,
        control_waves: Optional[Mapping[str, mna.Waveform]] = None,
        control_links: Optional[Mapping[str, object]] = None,
        opamp: OpAmpMacro = OpAmpMacro(),
    ):
        self.netlist = netlist
        self.input_waves = dict(input_waves or {})
        self.control_waves = dict(control_waves or {})
        #: FSM control signal -> net whose voltage realizes it (e.g. the
        #: zero-cross detector's output implementing the receiver's c1)
        self.control_links = dict(control_links or {})
        self.opamp = opamp
        self.circuit = mna.Circuit(title=netlist.name)
        self._aux = 0

    def _fresh(self, stem: str) -> str:
        self._aux += 1
        return f"{stem}_{self._aux}"

    def _control_node(self, inst: ComponentInstance) -> str:
        control = inst.control
        if control is None:
            raise SynthesisError(
                f"{inst.name} needs a control source for elaboration"
            )
        if isinstance(control, str):
            if control in self.control_links:
                return _net_node(self.control_links[control])
            node = f"ctrl_{control}"
            if control in self.control_waves and not any(
                getattr(e, "name", "") == f"VCTRL_{control}"
                for e in self.circuit.elements
            ):
                self.circuit.vsource(
                    f"VCTRL_{control}", node, "0", self.control_waves[control]
                )
            return node
        return _net_node(control)

    # -- component expansions ----------------------------------------------------

    def _expand_summing(self, inst: ComponentInstance, out: str) -> None:
        """Non-inverting weighted summer (see module docs for topology)."""
        weights = [float(w) for w in inst.params.get("weights", [1.0])]
        if len(weights) != len(inst.inputs):
            weights = [1.0] * len(inst.inputs)
        positives = [(n, w) for n, w in zip(inst.inputs, weights) if w > 0]
        negatives = [(n, -w) for n, w in zip(inst.inputs, weights) if w < 0]
        vplus = self._fresh(f"{inst.name}_vp")
        vminus = self._fresh(f"{inst.name}_vm")
        p_total = sum(w for _, w in positives)
        n_total = sum(w for _, w in negatives)
        if not positives:
            # Pure inverting summer followed by an ideal sign restore.
            inv = self._fresh(f"{inst.name}_inv")
            rf = R_NOM
            for index, (net, w) in enumerate(negatives):
                self.circuit.resistor(
                    f"{inst.name}_rn{index}", _net_node(net), vminus, rf / w
                )
            self.circuit.resistor(f"{inst.name}_rf", vminus, inv, rf)
            add_opamp(self.circuit, f"{inst.name}_oa", "0", vminus, inv,
                      self.opamp)
            self.circuit.vcvs(f"{inst.name}_sign", out, "0", inv, "0", -1.0)
            return
        # Pad the inverting side so the gain balance closes: K = 1 + N'.
        pad = max(p_total - 1.0 - n_total, 0.0)
        k_gain = 1.0 + n_total + pad
        # Positive network into v+ (conductances proportional to weights),
        # plus a grounding conductance when K exceeds the positive sum.
        for index, (net, w) in enumerate(positives):
            self.circuit.resistor(
                f"{inst.name}_rp{index}", _net_node(net), vplus, R_NOM / w
            )
        gg = (k_gain / p_total - 1.0) * p_total  # in units of 1/R_NOM
        if gg > 1e-9:
            self.circuit.resistor(f"{inst.name}_rg", vplus, "0", R_NOM / gg)
        # Inverting side: feedback plus one resistor per negative input.
        rf = R_NOM * k_gain
        self.circuit.resistor(f"{inst.name}_rfb", vminus, out, rf)
        divider_total = n_total + pad
        if divider_total > 1e-12:
            for index, (net, w) in enumerate(negatives):
                self.circuit.resistor(
                    f"{inst.name}_rn{index}", _net_node(net), vminus, rf / w
                )
            if pad > 1e-12:
                self.circuit.resistor(
                    f"{inst.name}_rpad", vminus, "0", rf / pad
                )
        else:
            # Plain non-inverting gain: ground resistor sets K.
            if k_gain > 1.0 + 1e-12:
                self.circuit.resistor(
                    f"{inst.name}_rgnd", vminus, "0", rf / (k_gain - 1.0)
                )
            else:
                # Unity gain: feedback only (follower-style).
                pass
        add_opamp(self.circuit, f"{inst.name}_oa", vplus, vminus, out,
                  self.opamp)

    def _expand_amplifier(
        self, inst: ComponentInstance, out: str, gain: float
    ) -> None:
        """Single gain stage with the sign/magnitude-appropriate topology."""
        source = _net_node(inst.inputs[0])
        if gain < 0:
            vminus = self._fresh(f"{inst.name}_vm")
            self.circuit.resistor(f"{inst.name}_r1", source, vminus, R_NOM)
            self.circuit.resistor(
                f"{inst.name}_rf", vminus, out, R_NOM * abs(gain)
            )
            add_opamp(self.circuit, f"{inst.name}_oa", "0", vminus, out,
                      self.opamp)
            return
        if gain >= 1.0:
            vminus = self._fresh(f"{inst.name}_vm")
            if gain > 1.0 + 1e-12:
                self.circuit.resistor(
                    f"{inst.name}_rg", vminus, "0", R_NOM
                )
                self.circuit.resistor(
                    f"{inst.name}_rf", vminus, out, R_NOM * (gain - 1.0)
                )
            else:
                self.circuit.resistor(f"{inst.name}_rf", vminus, out, R_NOM)
            add_opamp(self.circuit, f"{inst.name}_oa", source, vminus, out,
                      self.opamp)
            return
        # 0 < gain < 1: divider into a follower.
        divided = self._fresh(f"{inst.name}_div")
        self.circuit.resistor(
            f"{inst.name}_ra", source, divided, R_NOM * (1.0 - gain)
        )
        self.circuit.resistor(f"{inst.name}_rb", divided, "0", R_NOM * gain)
        add_opamp(self.circuit, f"{inst.name}_oa", divided, out, out,
                  self.opamp)

    def _expand_switched_gain(self, inst: ComponentInstance, out: str) -> None:
        """Switched attenuator/gain paths into one shared buffer op amp."""
        gains = [float(g) for g in inst.params.get("gains", [1.0])]
        source = _net_node(inst.inputs[0])
        control = self._control_node(inst)
        select = self._fresh(f"{inst.name}_sel")
        for index, gain in enumerate(gains[:2]):
            path = self._fresh(f"{inst.name}_g{index}")
            if abs(gain) <= 1.0:
                self.circuit.resistor(
                    f"{inst.name}_pa{index}", source, path,
                    R_NOM * max(1.0 - abs(gain), 1e-3),
                )
                self.circuit.resistor(
                    f"{inst.name}_pb{index}", path, "0",
                    R_NOM * max(abs(gain), 1e-3),
                )
            else:
                self.circuit.vcvs(
                    f"{inst.name}_pg{index}", path, "0", source, "0", abs(gain)
                )
            self.circuit.switch(
                f"{inst.name}_sw{index}", path, select, control,
                invert=(index == 1),
            )
        add_opamp(self.circuit, f"{inst.name}_oa", select, out, out, self.opamp)

    def _expand_integrator(self, inst: ComponentInstance, out: str) -> None:
        """Howland/Deboo non-inverting integrator.

        The integration constant is gm/C per input, so the absolute C is
        free; it is chosen large enough that the charging conductances
        dominate the buffer op amp's input loading (high-impedance
        buffer, gm >= 1 uS), keeping the DC settling error small.
        """
        weights = inst.params.get("weights")
        gains = (
            [float(w) for w in weights]  # type: ignore[union-attr]
            if weights is not None
            else [float(inst.params.get("gain", 1.0))]
        )
        cap_node = self._fresh(f"{inst.name}_c")
        min_gain = min(
            (abs(g) for g in gains if g != 0.0), default=1.0
        )
        c_val = max(10.0e-9, 1.0e-6 / min_gain)
        for index, (net, gain) in enumerate(zip(inst.inputs, gains)):
            gm = gain * c_val
            self.circuit.vccs(
                f"{inst.name}_gm{index}", "0", cap_node, _net_node(net), "0",
                gm,
            )
        initial = float(inst.params.get("initial", 0.0))
        self.circuit.capacitor(f"{inst.name}_cint", cap_node, "0", c_val,
                               ic=initial)
        buffer_macro = OpAmpMacro(
            dc_gain=self.opamp.dc_gain,
            vsat=self.opamp.vsat,
            rout=self.opamp.rout,
            rin=1.0e9,
            pole_hz=self.opamp.pole_hz,
        )
        add_opamp(self.circuit, f"{inst.name}_oa", cap_node, out, out,
                  buffer_macro)

    def _expand_differentiator(self, inst: ComponentInstance, out: str) -> None:
        source = _net_node(inst.inputs[0])
        vminus = self._fresh(f"{inst.name}_vm")
        inv = self._fresh(f"{inst.name}_inv")
        c_val = 10.0e-9
        self.circuit.capacitor(f"{inst.name}_cd", source, vminus, c_val)
        self.circuit.resistor(f"{inst.name}_rf", vminus, inv, 1.0 / c_val * 1e-3)
        add_opamp(self.circuit, f"{inst.name}_oa", "0", vminus, inv, self.opamp)
        self.circuit.vcvs(f"{inst.name}_sign", out, "0", inv, "0", -1.0)

    def _expand_instance(self, inst: ComponentInstance) -> None:
        if inst.output is None:
            raise SynthesisError(f"{inst.name} has no output net")
        out = _net_node(inst.output)
        kind = inst.spec.name

        if kind in ("summing_amplifier", "weighted_summing_amplifier"):
            self._expand_summing(inst, out)
        elif kind == "difference_amplifier":
            weights = [1.0, -1.0]
            clone = ComponentInstance(
                name=inst.name,
                spec=inst.spec,
                params={"weights": weights},
                inputs=list(inst.inputs),
                output=inst.output,
            )
            self._expand_summing(clone, out)
        elif kind in ("inverting_amplifier", "noninverting_amplifier"):
            self._expand_amplifier(inst, out, float(inst.params.get("gain", 1.0)))
        elif kind == "inverting_cascade":
            gain = float(inst.params.get("gain", 1.0))
            stage = math.sqrt(abs(gain))
            middle = self._fresh(f"{inst.name}_mid")
            first = ComponentInstance(
                name=f"{inst.name}a", spec=inst.spec, params={},
                inputs=list(inst.inputs), output=None,
            )
            self._expand_amplifier(first, middle, -stage)
            second = ComponentInstance(
                name=f"{inst.name}b", spec=inst.spec, params={},
                inputs=[], output=None,
            )
            # Wire the second stage by hand: its input is `middle`.
            vminus = self._fresh(f"{inst.name}_vm2")
            if gain > 0:
                # Second inverting stage: (-s)(-s) = +|gain|.
                self.circuit.resistor(f"{inst.name}_r2", middle, vminus,
                                      R_NOM)
                self.circuit.resistor(
                    f"{inst.name}_rf2", vminus, out, R_NOM * stage
                )
                add_opamp(self.circuit, f"{inst.name}_oa2", "0", vminus, out,
                          self.opamp)
            else:
                # Non-inverting second stage keeps the overall sign
                # negative: (-s)(+s) = -|gain|.
                self.circuit.resistor(f"{inst.name}_rg2", vminus, "0", R_NOM)
                self.circuit.resistor(
                    f"{inst.name}_rf2", vminus, out,
                    R_NOM * max(stage - 1.0, 1e-3),
                )
                add_opamp(self.circuit, f"{inst.name}_oa2", middle, vminus,
                          out, self.opamp)
        elif kind == "switched_gain_amplifier":
            self._expand_switched_gain(inst, out)
        elif kind in ("integrator", "summing_integrator"):
            self._expand_integrator(inst, out)
        elif kind == "differentiator":
            self._expand_differentiator(inst, out)
        elif kind == "multiplier":
            a, b = (_net_node(n) for n in inst.inputs[:2])
            self.circuit.function_source(
                f"{inst.name}_core", out, [a, b], lambda x, y: x * y
            )
        elif kind == "divider":
            a, b = (_net_node(n) for n in inst.inputs[:2])
            self.circuit.function_source(
                f"{inst.name}_core",
                out,
                [a, b],
                lambda x, y: x / (y if abs(y) > 1e-3 else math.copysign(1e-3, y or 1.0)),
            )
        elif kind == "log_amplifier":
            a = _net_node(inst.inputs[0])
            self.circuit.function_source(
                f"{inst.name}_core", out, [a],
                lambda x: math.log(max(x, 1e-9)),
            )
        elif kind == "antilog_amplifier":
            a = _net_node(inst.inputs[0])
            self.circuit.function_source(
                f"{inst.name}_core", out, [a],
                lambda x: math.exp(min(x, 50.0)),
            )
        elif kind == "rectifier":
            a = _net_node(inst.inputs[0])
            self.circuit.function_source(
                f"{inst.name}_core", out, [a], abs
            )
        elif kind in ("limiter", "output_stage"):
            level = float(inst.params.get("high", 1.0))
            add_limiter_stage(
                self.circuit, inst.name, _net_node(inst.inputs[0]), out,
                level=level,
            )
            load = inst.params.get("load_ohms")
            if load:
                self.circuit.resistor(
                    f"{inst.name}_rload", out, "0", float(load)
                )
        elif kind == "voltage_follower":
            add_opamp(
                self.circuit, f"{inst.name}_oa", _net_node(inst.inputs[0]),
                out, out, self.opamp,
            )
        elif kind in ("zero_cross_detector", "schmitt_trigger"):
            threshold = float(inst.params.get("threshold", 0.0))
            hysteresis = float(inst.params.get("hysteresis", 0.0))
            invert = bool(inst.params.get("invert", False))
            a = _net_node(inst.inputs[0])
            if hysteresis > 0.0:
                fn = _sigmoid(0.0)

                def schmitt(x, y, _fn=fn, _th=threshold, _h=hysteresis,
                            _inv=invert):
                    state = (1.0 - y) if _inv else y
                    raw = _fn(x - _th + _h * (2.0 * state - 1.0))
                    return (1.0 - raw) if _inv else raw

                self.circuit.function_source(
                    f"{inst.name}_core", out, [a, out], schmitt
                )
            else:
                base = _sigmoid(threshold)
                fn = (lambda x, _b=base: 1.0 - _b(x)) if invert else base
                self.circuit.function_source(
                    f"{inst.name}_core", out, [a], fn
                )
        elif kind == "sample_hold":
            a = _net_node(inst.inputs[0])
            control = self._control_node(inst)
            hold = self._fresh(f"{inst.name}_hold")
            self.circuit.switch(f"{inst.name}_sw", a, hold, control)
            self.circuit.capacitor(f"{inst.name}_ch", hold, "0", 1.0e-9)
            add_opamp(self.circuit, f"{inst.name}_oa", hold, out, out,
                      self.opamp)
        elif kind == "analog_switch":
            a = _net_node(inst.inputs[0])
            control = self._control_node(inst)
            self.circuit.switch(f"{inst.name}_sw", a, out, control)
            self.circuit.resistor(f"{inst.name}_bleed", out, "0", 10.0e6)
        elif kind == "analog_mux":
            control = self._control_node(inst)
            for index, net in enumerate(inst.inputs[:2]):
                self.circuit.switch(
                    f"{inst.name}_sw{index}", _net_node(net), out, control,
                    invert=(index == 1),
                )
            self.circuit.resistor(f"{inst.name}_bleed", out, "0", 10.0e6)
        elif kind == "adc":
            # Digital codes are outside the analog substrate: the ADC's
            # analog front end (sampler + buffer) is elaborated; the
            # quantizer itself lives in the behavioral domain.
            a = _net_node(inst.inputs[0])
            control = self._control_node(inst)
            hold = self._fresh(f"{inst.name}_hold")
            self.circuit.switch(f"{inst.name}_sw", a, hold, control)
            self.circuit.capacitor(f"{inst.name}_ch", hold, "0", 1.0e-9)
            add_opamp(self.circuit, f"{inst.name}_oa", hold, out, out,
                      self.opamp)
        else:
            raise SynthesisError(
                f"no elaboration rule for component {kind!r}"
            )

    # -- top level ---------------------------------------------------------------

    def build(self) -> ElaboratedCircuit:
        result = ElaboratedCircuit(circuit=self.circuit)
        for port, net in self.netlist.inputs.items():
            node = _net_node(net)
            wave = self.input_waves.get(port, mna.dc(0.0))
            self.circuit.vsource(f"VIN_{port}", node, "0", wave)
            result.input_nodes[port] = node
        for net, value in self.netlist.const_nets.items():
            self.circuit.vsource(f"VREF_{net}", _net_node(net), "0", value)
        for inst in self.netlist.instances:
            self._expand_instance(inst)
        for port, net in self.netlist.outputs.items():
            result.output_nodes[port] = _net_node(net)
        for net in list(self.netlist.inputs.values()) + [
            i.output for i in self.netlist.instances
        ]:
            result.nodes[net] = _net_node(net)
        return result


def elaborate(
    netlist: Netlist,
    input_waves: Optional[Mapping[str, mna.Waveform]] = None,
    control_waves: Optional[Mapping[str, mna.Waveform]] = None,
    control_links: Optional[Mapping[str, object]] = None,
    opamp: OpAmpMacro = OpAmpMacro(),
) -> ElaboratedCircuit:
    """Elaborate a synthesized netlist into an executable MNA circuit."""
    return Elaborator(
        netlist,
        input_waves=input_waves,
        control_waves=control_waves,
        control_links=control_links,
        opamp=opamp,
    ).build()


def infer_control_links(design, netlist: Netlist) -> Dict[str, object]:
    """Derive FSM-signal -> net links from simple comparator FSMs.

    When an FSM output signal follows the pattern "assign '1' when a
    single 'above event is true, '0' otherwise" (the receiver's
    compensation control), its hardware realization *is* the zero-cross
    detector watching that quantity — the paper's observation that the
    "sophisticated" control part reduces to a simple zero-cross
    detector.  For such signals the detector's output net realizes the
    control directly.
    """
    from repro.vhif.fsm import AboveEvent, DataOp
    from repro.vass import ast_nodes as ast

    links: Dict[str, object] = {}
    cover_to_net: Dict[int, object] = {}
    for inst in netlist.instances:
        for block_id in inst.covers:
            cover_to_net[block_id] = inst.output

    for fsm in design.fsms:
        events = [
            cond
            for transition in fsm.transitions
            for cond in _above_events(transition.condition)
        ]
        if not events:
            continue
        event = events[0]
        source = design.event_sources.get(event.key)
        if source is None:
            continue
        _sfg_name, comparator_block = source
        net = cover_to_net.get(comparator_block)
        if net is None:
            continue
        for signal in fsm.output_signals():
            if _is_one_zero_signal(fsm, signal):
                links[signal] = net
    return links


def _above_events(condition) -> List[object]:
    from repro.vhif.fsm import AboveEvent, AllOf, AnyOf, Not

    if isinstance(condition, AboveEvent):
        return [condition]
    if isinstance(condition, (AllOf, AnyOf)):
        out: List[object] = []
        for operand in condition.operands:
            out.extend(_above_events(operand))
        return out
    if isinstance(condition, Not):
        return _above_events(condition.operand)
    return []


def _is_one_zero_signal(fsm, signal: str) -> bool:
    """True when every assignment to ``signal`` is a '0'/'1' literal."""
    from repro.vass import ast_nodes as ast

    found = False
    for state in fsm.states:
        for op in state.operations:
            if op.target != signal:
                continue
            if not isinstance(op.expr, ast.CharacterLiteral):
                return False
            found = True
    return found
